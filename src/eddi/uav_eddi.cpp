#include "sesame/eddi/uav_eddi.hpp"

#include <algorithm>
#include <stdexcept>

namespace sesame::eddi {

UavEddi::UavEddi(std::string uav_name, UavEddiConfig config,
                 std::vector<std::vector<double>> safeml_reference)
    : name_(std::move(uav_name)), config_(config),
      reliability_(config_.reliability), battery_tracker_(config_.reliability.battery),
      safeml_(config_.safeml, std::move(safeml_reference)),
      risk_(config_.sinadra) {
  if (name_.empty()) throw std::invalid_argument("UavEddi: empty name");
  if (config_.uncertainty_floor < 0.0 || config_.uncertainty_span <= 0.0 ||
      config_.uncertainty_floor + config_.uncertainty_span > 1.0 + 1e-12) {
    throw std::invalid_argument("UavEddi: bad uncertainty calibration");
  }
  if (config_.reliability_horizon_s <= 0.0) {
    throw std::invalid_argument("UavEddi: non-positive horizon");
  }
}

void UavEddi::attach_deepknowledge(
    std::shared_ptr<const deepknowledge::Mlp> model,
    std::shared_ptr<const deepknowledge::Analyzer> analyzer, std::size_t window) {
  if (!model || !analyzer) {
    throw std::invalid_argument("attach_deepknowledge: null asset");
  }
  if (window < 2) throw std::invalid_argument("attach_deepknowledge: window < 2");
  dk_model_ = std::move(model);
  dk_analyzer_ = std::move(analyzer);
  dk_window_size_ = window;
  dk_window_.clear();
}

void UavEddi::attach_security(std::shared_ptr<security::SecurityEddi> security) {
  if (!security) throw std::invalid_argument("attach_security: null");
  security_ = std::move(security);
}

sinadra::PerceptionConfidence UavEddi::safeml_confidence_band() const {
  if (!assessment_.safeml.has_value()) {
    return sinadra::PerceptionConfidence::kUnknown;
  }
  switch (assessment_.safeml->level) {
    case safeml::ConfidenceLevel::kHigh:
      return sinadra::PerceptionConfidence::kHigh;
    case safeml::ConfidenceLevel::kMedium:
      return sinadra::PerceptionConfidence::kMedium;
    case safeml::ConfidenceLevel::kLow:
      return sinadra::PerceptionConfidence::kLow;
  }
  return sinadra::PerceptionConfidence::kUnknown;
}

sinadra::PerceptionConfidence UavEddi::dk_confidence_band() const {
  if (!assessment_.deepknowledge.has_value()) {
    return sinadra::PerceptionConfidence::kUnknown;
  }
  const double u = assessment_.deepknowledge->uncertainty;
  if (u < 0.35) return sinadra::PerceptionConfidence::kHigh;
  if (u < 0.70) return sinadra::PerceptionConfidence::kMedium;
  return sinadra::PerceptionConfidence::kLow;
}

const EddiAssessment& UavEddi::tick(const EddiInputs& inputs) {
  last_inputs_ = inputs;

  // SafeDrones reliability. Propulsion/processor/comms are prospective
  // risks over the configured horizon; the battery term is the *cumulative*
  // failure probability carried forward by the runtime tracker (the Fig. 5
  // curve rises monotonically after a thermal fault).
  battery_tracker_.observe_soc(inputs.telemetry.battery_soc);
  battery_tracker_.advance(inputs.dt_s, inputs.telemetry.battery_temp_c);
  const auto prospective = reliability_.evaluate_prospective(
      inputs.telemetry, config_.reliability_horizon_s);
  assessment_.reliability = reliability_.compose(
      prospective.p_propulsion, battery_tracker_.failure_probability(),
      prospective.p_processor, prospective.p_comms);

  // SafeML distribution-shift monitoring.
  if (!inputs.frame_features.empty()) {
    safeml_.push(inputs.frame_features);
  }
  assessment_.safeml = safeml_.assess();

  // DeepKnowledge coverage over a sliding detection-feature window.
  if (dk_analyzer_) {
    for (const auto& f : inputs.detection_features) {
      dk_window_.push_back(f);
      if (dk_window_.size() > dk_window_size_) {
        dk_window_.erase(dk_window_.begin());
      }
    }
    if (dk_window_.size() >= dk_window_size_) {
      assessment_.deepknowledge = dk_analyzer_->assess(*dk_model_, dk_window_);
    }
  }

  // SINADRA situation risk, fed by the monitor bands.
  sinadra::SituationEvidence situation;
  situation.altitude = inputs.altitude_band;
  situation.visibility = inputs.visibility;
  situation.density = inputs.density;
  situation.safeml = safeml_confidence_band();
  situation.deepknowledge = dk_confidence_band();
  assessment_.risk = risk_.assess(situation);

  // Combined SAR uncertainty (paper Section V-B): mean of the available
  // perception-health signals, calibrated onto the reported scale.
  double raw = 0.0;
  double weight = 0.0;
  if (assessment_.safeml.has_value()) {
    raw += 1.0 - assessment_.safeml->confidence;
    weight += 1.0;
  }
  if (assessment_.deepknowledge.has_value()) {
    const double baseline =
        std::min(config_.dk_uncertainty_baseline, 1.0 - 1e-9);
    raw += std::max(0.0, (assessment_.deepknowledge->uncertainty - baseline) /
                             (1.0 - baseline));
    weight += 1.0;
  }
  raw += assessment_.risk.criticality;
  weight += 1.0;
  raw /= weight;
  assessment_.sar_uncertainty =
      std::clamp(config_.uncertainty_floor + config_.uncertainty_span * raw,
                 0.0, 1.0);
  assessment_.uncertainty_exceeded =
      assessment_.sar_uncertainty > config_.uncertainty_threshold;

  ticked_ = true;
  return assessment_;
}

bool UavEddi::attack_detected() const {
  return security_ && security_->attack_detected();
}

conserts::UavEvidence UavEddi::consert_evidence() const {
  if (!ticked_) {
    throw std::logic_error("UavEddi::consert_evidence: tick() never called");
  }
  conserts::UavEvidence e;
  e.gps_quality_good = last_inputs_.gps_fix_available;
  e.no_security_attack = !attack_detected();
  e.vision_sensor_healthy = last_inputs_.vision_sensor_healthy;
  e.safeml_confidence_high =
      assessment_.safeml.has_value() &&
      assessment_.safeml->level == safeml::ConfidenceLevel::kHigh;
  e.comm_link_good = last_inputs_.comm_link_good;
  e.nearby_uav_available = last_inputs_.nearby_uav_available;
  switch (assessment_.reliability.level) {
    case safedrones::ReliabilityLevel::kHigh: e.reliability_high = true; break;
    case safedrones::ReliabilityLevel::kMedium:
      e.reliability_medium = true;
      break;
    case safedrones::ReliabilityLevel::kLow: e.reliability_low = true; break;
  }
  return e;
}

ode::Value UavEddi::to_ode() const {
  ode::Value doc;
  doc["ode_version"] = "0.1";
  doc["artefact"] = "EDDI";
  doc["system"] = name_;

  ode::Value models;
  {
    ode::Value m;
    m["type"] = "markov_reliability";
    m["technology"] = "SafeDrones";
    m["horizon_s"] = config_.reliability_horizon_s;
    m["abort_threshold"] = config_.reliability.abort_threshold;
    m["airframe_rotors"] =
        safedrones::rotor_count(config_.reliability.propulsion.airframe);
    models.push_back(m);
  }
  {
    ode::Value m;
    m["type"] = "statistical_distance_monitor";
    m["technology"] = "SafeML";
    m["measure"] = safeml::measure_name(config_.safeml.measure);
    m["window"] = config_.safeml.window;
    m["features"] = safeml_.num_features();
    models.push_back(m);
  }
  if (dk_analyzer_) {
    ode::Value m;
    m["type"] = "neuron_coverage_monitor";
    m["technology"] = "DeepKnowledge";
    m["tk_neurons"] = dk_analyzer_->tk_neurons().size();
    m["window"] = dk_window_size_;
    models.push_back(m);
  }
  {
    ode::Value m;
    m["type"] = "bayesian_risk_model";
    m["technology"] = "SINADRA";
    m["variables"] = risk_.network().num_variables();
    models.push_back(m);
  }
  if (security_) {
    ode::Value m;
    m["type"] = "attack_tree_monitor";
    m["technology"] = "SecurityEDDI";
    m["tree"] = security_->tree().name();
    models.push_back(m);
  }
  doc["models"] = models;

  ode::Value calibration;
  calibration["uncertainty_floor"] = config_.uncertainty_floor;
  calibration["uncertainty_span"] = config_.uncertainty_span;
  calibration["uncertainty_threshold"] = config_.uncertainty_threshold;
  doc["sar_uncertainty_calibration"] = calibration;
  return doc;
}

}  // namespace sesame::eddi
