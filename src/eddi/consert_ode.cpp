#include "sesame/eddi/consert_ode.hpp"

namespace sesame::eddi {

ode::Value consert_network_to_ode(const conserts::ConSertNetwork& network) {
  ode::Value doc;
  doc["ode_version"] = "0.1";
  doc["artefact"] = "ConSertNetwork";
  doc["consert_count"] = network.size();

  ode::Value conserts;
  for (const auto& name : network.names()) {
    const auto& consert = network.at(name);
    ode::Value c;
    c["name"] = name;

    ode::Value guarantees;
    for (const auto& g : consert.guarantees()) {
      ode::Value gv;
      gv["name"] = g.name;
      gv["rank"] = g.rank;

      std::set<std::string> evidence;
      g.condition->collect_evidence(evidence);
      ode::Value ev;
      for (const auto& e : evidence) ev.push_back(e);
      gv["evidence"] = ev.is_null() ? ode::Value(ode::Value::Array{}) : ev;

      std::set<std::pair<std::string, std::string>> demands;
      g.condition->collect_demands(demands);
      ode::Value dv;
      for (const auto& [target, guarantee] : demands) {
        ode::Value d;
        d["consert"] = target;
        d["guarantee"] = guarantee;
        dv.push_back(d);
      }
      gv["demands"] = dv.is_null() ? ode::Value(ode::Value::Array{}) : dv;
      guarantees.push_back(gv);
    }
    c["guarantees"] = guarantees.is_null()
                          ? ode::Value(ode::Value::Array{})
                          : guarantees;
    conserts.push_back(c);
  }
  doc["conserts"] = conserts.is_null() ? ode::Value(ode::Value::Array{})
                                       : conserts;
  return doc;
}

ode::Value assurance_trace_to_ode(
    const std::vector<conserts::GuaranteeTransition>& transitions) {
  ode::Value doc;
  doc["ode_version"] = "0.1";
  doc["artefact"] = "AssuranceTrace";
  doc["transition_count"] = transitions.size();
  ode::Value items{ode::Value::Array{}};
  for (const auto& t : transitions) {
    ode::Value item;
    item["time_s"] = t.time_s;
    item["consert"] = t.consert;
    item["from"] = t.from.empty() ? ode::Value(nullptr) : ode::Value(t.from);
    item["to"] = t.to.empty() ? ode::Value(nullptr) : ode::Value(t.to);
    items.push_back(item);
  }
  doc["transitions"] = items;
  return doc;
}

}  // namespace sesame::eddi
