#include "sesame/eddi/ode.hpp"

#include <cctype>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace sesame::eddi::ode {

Value& Value::operator[](const std::string& key) {
  if (is_null()) data_ = Object{};
  if (!is_object()) throw std::logic_error("ode::Value: not an object");
  return std::get<Object>(data_)[key];
}

const Value& Value::at(const std::string& key) const {
  if (!is_object()) throw std::logic_error("ode::Value: not an object");
  const auto& obj = std::get<Object>(data_);
  const auto it = obj.find(key);
  if (it == obj.end()) throw std::out_of_range("ode::Value: no key " + key);
  return it->second;
}

void Value::push_back(Value v) {
  if (is_null()) data_ = Array{};
  if (!is_array()) throw std::logic_error("ode::Value: not an array");
  std::get<Array>(data_).push_back(std::move(v));
}

namespace {

void escape_to(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write(std::ostream& os, const Value& v) {
  if (v.is_null()) {
    os << "null";
  } else if (v.is_bool()) {
    os << (v.as_bool() ? "true" : "false");
  } else if (v.is_number()) {
    const double d = v.as_number();
    if (!std::isfinite(d)) {
      // RFC 8259 has no NaN/Inf token; clamp to null so every document
      // this writer emits re-parses (parse_json rejects bare "nan").
      os << "null";
    } else if (d == std::floor(d) && std::abs(d) < 1e15) {
      os << static_cast<long long>(d);
    } else {
      std::ostringstream tmp;
      tmp.precision(17);
      tmp << d;
      os << tmp.str();
    }
  } else if (v.is_string()) {
    escape_to(os, v.as_string());
  } else if (v.is_array()) {
    os << '[';
    bool first = true;
    for (const auto& item : v.as_array()) {
      if (!first) os << ',';
      first = false;
      write(os, item);
    }
    os << ']';
  } else {
    os << '{';
    bool first = true;
    for (const auto& [key, val] : v.as_object()) {
      if (!first) os << ',';
      first = false;
      escape_to(os, key);
      os << ':';
      write(os, val);
    }
    os << '}';
  }
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("parse_json: " + why + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n]) ++n;
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Value(parse_string());
    if (consume_literal("null")) return Value(nullptr);
    if (consume_literal("true")) return Value(true);
    if (consume_literal("false")) return Value(false);
    return parse_number();
  }

  Value parse_object() {
    next();  // {
    Value::Object obj;
    skip_ws();
    if (peek() == '}') {
      next();
      return Value(std::move(obj));
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      skip_ws();
      if (next() != ':') fail("expected ':'");
      obj[std::move(key)] = parse_value();
      skip_ws();
      const char sep = next();
      if (sep == '}') break;
      if (sep != ',') fail("expected ',' or '}'");
    }
    return Value(std::move(obj));
  }

  Value parse_array() {
    next();  // [
    Value::Array arr;
    skip_ws();
    if (peek() == ']') {
      next();
      return Value(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char sep = next();
      if (sep == ']') break;
      if (sep != ',') fail("expected ',' or ']'");
    }
    return Value(std::move(arr));
  }

  std::string parse_string() {
    if (next() != '"') fail("expected string");
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') break;
      if (c == '\\') {
        const char esc = next();
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            const std::string hex = text_.substr(pos_, 4);
            pos_ += 4;
            const auto code = static_cast<unsigned>(std::stoul(hex, nullptr, 16));
            // Encode BMP code point as UTF-8.
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: fail("bad escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected value");
    try {
      return Value(std::stod(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      fail("bad number");
    }
  }
};

}  // namespace

std::string Value::to_json() const {
  std::ostringstream os;
  write(os, *this);
  return os.str();
}

Value parse_json(const std::string& text) { return Parser(text).parse(); }

}  // namespace sesame::eddi::ode
