#include "sesame/sim/camera.hpp"

#include <cmath>
#include <stdexcept>

namespace sesame::sim {

bool Footprint::contains(const geo::EnuPoint& p) const {
  return std::abs(p.east_m - center_east_m) <= half_width_m &&
         std::abs(p.north_m - center_north_m) <= half_height_m;
}

Camera::Camera(CameraConfig config) : config_(config) {
  if (config_.hfov_deg <= 0.0 || config_.hfov_deg >= 180.0 ||
      config_.vfov_deg <= 0.0 || config_.vfov_deg >= 180.0) {
    throw std::invalid_argument("Camera: FOV out of (0, 180)");
  }
  if (config_.image_width_px == 0 || config_.image_height_px == 0) {
    throw std::invalid_argument("Camera: zero image dimension");
  }
  tan_half_hfov_ = std::tan(geo::deg_to_rad(config_.hfov_deg / 2.0));
  tan_half_vfov_ = std::tan(geo::deg_to_rad(config_.vfov_deg / 2.0));
}

Footprint Camera::footprint(const geo::EnuPoint& pos) const {
  Footprint f;
  f.center_east_m = pos.east_m;
  f.center_north_m = pos.north_m;
  const double alt = pos.up_m;
  if (alt <= 0.0) return f;  // zero-area footprint on/below ground
  f.half_width_m = alt * tan_half_hfov_;
  f.half_height_m = alt * tan_half_vfov_;
  return f;
}

double Camera::ground_sample_distance_m(double altitude_m) const {
  if (altitude_m <= 0.0) return 0.0;
  const double width_m = 2.0 * altitude_m * tan_half_hfov_;
  return width_m / static_cast<double>(config_.image_width_px);
}

std::vector<std::size_t> Camera::visible(
    const geo::EnuPoint& pos, const std::vector<geo::EnuPoint>& points) const {
  const Footprint f = footprint(pos);
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (f.contains(points[i])) out.push_back(i);
  }
  return out;
}

}  // namespace sesame::sim
