#include "sesame/sim/world.hpp"

#include <chrono>
#include <stdexcept>

namespace sesame::sim {

std::string telemetry_topic(const std::string& uav_name) {
  return "uav/" + uav_name + "/telemetry";
}

std::string position_fix_topic(const std::string& uav_name) {
  return "uav/" + uav_name + "/position_fix";
}

World::World(const geo::GeoPoint& origin, std::uint64_t seed)
    : frame_(origin), rng_(seed) {}

std::size_t World::add_uav(UavConfig config, const geo::GeoPoint& home) {
  for (const auto& slot : uavs_) {
    if (slot.uav->name() == config.name) {
      throw std::invalid_argument("World::add_uav: duplicate name " + config.name);
    }
  }
  Slot slot;
  slot.uav = std::make_unique<Uav>(std::move(config), frame_, home, rng_);
  Uav* raw = slot.uav.get();
  // The fix channel is trusted verbatim — the deliberate vulnerability.
  slot.fix_subscription = bus_.subscribe<geo::GeoPoint>(
      position_fix_topic(raw->name()),
      [raw](const mw::MessageHeader&, const geo::GeoPoint& fix) {
        raw->correct_estimate(fix);
      });
  uavs_.push_back(std::move(slot));
  return uavs_.size() - 1;
}

Uav& World::uav_by_name(const std::string& name) {
  for (auto& slot : uavs_) {
    if (slot.uav->name() == name) return *slot.uav;
  }
  throw std::out_of_range("World::uav_by_name: " + name);
}

void World::add_person(const geo::EnuPoint& position) {
  persons_.push_back(Person{position, false});
}

std::size_t World::persons_detected() const {
  std::size_t n = 0;
  for (const auto& p : persons_) {
    if (p.detected) ++n;
  }
  return n;
}

void World::set_metrics(obs::MetricsRegistry* registry) {
  bus_.set_metrics(registry);
  if (registry == nullptr) {
    step_duration_ = nullptr;
    steps_total_ = nullptr;
    clock_gauge_ = nullptr;
    return;
  }
  step_duration_ = &registry->histogram("sesame.sim.step_duration_seconds", {},
                                        obs::duration_buckets_s());
  steps_total_ = &registry->counter("sesame.sim.steps_total");
  clock_gauge_ = &registry->gauge("sesame.sim.time_s");
}

void World::step(double dt_s) {
  if (dt_s <= 0.0) throw std::invalid_argument("World::step: non-positive dt");
  const auto t0 = step_duration_ != nullptr
                      ? std::chrono::steady_clock::now()
                      : std::chrono::steady_clock::time_point{};
  for (auto& slot : uavs_) {
    slot.uav->step(dt_s, wind_);
  }
  time_s_ += dt_s;
  for (auto& slot : uavs_) {
    const Uav& u = *slot.uav;
    Telemetry t;
    t.uav = u.name();
    t.reported_position = u.estimated_geo();
    t.altitude_m = u.true_position().up_m;
    t.battery_soc = u.battery().soc();
    t.battery_temp_c = u.battery().temperature_c();
    t.mode = u.mode();
    t.time_s = time_s_;
    t.gps_fix = !u.gps().signal_lost() && !u.gps().disabled();
    bus_.publish(telemetry_topic(u.name()), t, u.name(), time_s_);
  }
  if (step_duration_ != nullptr) {
    step_duration_->observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
    steps_total_->inc();
    clock_gauge_->set(time_s_);
  }
}

void World::run(std::size_t n, double dt_s) {
  for (std::size_t i = 0; i < n; ++i) step(dt_s);
}

}  // namespace sesame::sim
