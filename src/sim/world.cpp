#include "sesame/sim/world.hpp"

#include <chrono>
#include <stdexcept>

namespace sesame::sim {

std::string telemetry_topic(const std::string& uav_name) {
  return "uav/" + uav_name + "/telemetry";
}

std::string position_fix_topic(const std::string& uav_name) {
  return "uav/" + uav_name + "/position_fix";
}

std::string ping_topic(const std::string& uav_name) {
  return "uav/" + uav_name + "/ping";
}

std::string health_topic(const std::string& uav_name) {
  return "uav/" + uav_name + "/health";
}

// Drops C2 traffic with probability 1 − link quality at the publishing
// UAV's current ground distance from the GCS. Each vehicle's fading and
// drop draws come from its *own* SplitMix64-derived stream (keyed by the
// vehicle's add-order index), so the world's random stream is untouched
// AND one vehicle's traffic volume never perturbs another vehicle's link
// draws: adding, crashing, or losing a vehicle mid-run leaves every other
// link sequence bit-identical — the property chaos campaigns rely on.
class World::LinkGate : public mw::DeliveryPolicy {
 public:
  static constexpr std::uint32_t kNotC2 = 0xFFFFFFFFu;

  LinkGate(World& world, const LossyLinkConfig& config)
      : world_(world), link_(config.link), gcs_(config.gcs_enu),
        seed_(config.seed) {}

  mw::FaultDecision decide(const mw::MessageHeader& header) override {
    mw::FaultDecision d;
    const std::uint32_t index = uav_for_topic(header);
    if (index == kNotC2) return d;  // not C2 traffic
    mathx::Rng& rng = stream_for(index);
    const Uav& uav = *world_.uavs_[index].uav;
    const double distance_m =
        geo::enu_ground_distance_m(uav.true_position(), gcs_);
    const double quality = link_.sample_quality(distance_m, rng);
    world_.fleet_.link_quality[index] = quality;
    d.drop = rng.bernoulli(1.0 - quality);
    return d;
  }

 private:
  /// The vehicle's decoupled link stream, created on first use.
  mathx::Rng& stream_for(std::uint32_t index) {
    while (streams_.size() <= index) {
      streams_.emplace_back(derive_stream_seed(seed_, streams_.size()));
    }
    return streams_[index];
  }

  /// Resolves "uav/<name>/telemetry" and "uav/<name>/position_fix" to the
  /// index of the UAV whose link the message rides; kNotC2 for any other
  /// topic. The per-TopicId resolution is memoised: steady-state C2
  /// traffic costs one indexed load here, not a topic-string parse.
  std::uint32_t uav_for_topic(const mw::MessageHeader& header) {
    const std::uint32_t idx = header.topic_id.index();
    if (idx < cache_.size() && cache_[idx].known) return cache_[idx].uav_index;
    const std::string_view topic = header.topic;
    bool cacheable = true;
    const std::uint32_t uav_index = parse_topic(topic, cacheable);
    if (cacheable && header.topic_id.valid()) {
      if (cache_.size() <= idx) cache_.resize(idx + 1);
      cache_[idx] = {true, uav_index};
    }
    return uav_index;
  }

  /// `cacheable` is cleared for topics that *look like* C2 traffic but name
  /// an unknown UAV — one added later must not inherit a stale miss.
  std::uint32_t parse_topic(std::string_view topic, bool& cacheable) const {
    if (!topic.starts_with("uav/")) return kNotC2;
    const auto slash = topic.find('/', 4);
    if (slash == std::string_view::npos) return kNotC2;
    const std::string_view suffix = topic.substr(slash);
    if (suffix != "/telemetry" && suffix != "/position_fix") return kNotC2;
    const std::string_view name = topic.substr(4, slash - 4);
    if (const auto it = world_.uav_index_.find(name);
        it != world_.uav_index_.end()) {
      return static_cast<std::uint32_t>(it->second);
    }
    cacheable = false;
    return kNotC2;
  }

  struct CacheSlot {
    bool known = false;
    std::uint32_t uav_index = kNotC2;
  };

  World& world_;
  CommLink link_;
  geo::EnuPoint gcs_;
  std::uint64_t seed_;
  std::vector<mathx::Rng> streams_;  ///< indexed by vehicle add-order
  std::vector<CacheSlot> cache_;     ///< indexed by TopicId
};

World::World(const geo::GeoPoint& origin, std::uint64_t seed)
    : frame_(origin), rng_(seed) {}

// Out-of-line: LinkGate is incomplete in the header.
World::~World() {
  // Teardown half of the reset contract: in-flight delayed deliveries must
  // not survive the run that published them.
  bus_.clear_delayed();
}
World::World(World&&) noexcept = default;
World& World::operator=(World&&) noexcept = default;

std::size_t World::reset_pending_comms() {
  bus_.clear_journal();
  return bus_.clear_delayed();
}

void World::enable_lossy_links(const LossyLinkConfig& config) {
  if (link_gate_ != nullptr) {
    throw std::logic_error("World::enable_lossy_links: already enabled");
  }
  link_gate_ = std::make_unique<LinkGate>(*this, config);
  link_gate_sub_ = bus_.add_delivery_policy(link_gate_.get());
}

std::size_t World::add_uav(UavConfig config, const geo::GeoPoint& home) {
  if (uav_index_.contains(config.name)) {
    throw std::invalid_argument("World::add_uav: duplicate name " + config.name);
  }
  Slot slot;
  const std::size_t fleet_index = fleet_.add({0.0, 0.0, 0.0}, 1.0);
  slot.uav = std::make_unique<Uav>(std::move(config), frame_, home, rng_,
                                   fleet_, fleet_index);
  Uav* raw = slot.uav.get();
  uav_grid_stale_ = true;
  // The fix channel is trusted verbatim — the deliberate vulnerability.
  slot.fix_subscription = bus_.subscribe<geo::GeoPoint>(
      position_fix_topic(raw->name()),
      [raw](const mw::MessageHeader&, const geo::GeoPoint& fix) {
        raw->correct_estimate(fix);
      });
  slot.telemetry_topic = bus_.intern_topic(telemetry_topic(raw->name()));
  slot.health_topic = bus_.intern_topic(health_topic(raw->name()));
  slot.source = bus_.intern_source(raw->name());
  // Liveness ping: a reachable vehicle answers with an immediate telemetry
  // publication (the pong rides the same lossy C2 link as everything else).
  // The ping itself is droppable too — a blacked-out vehicle never hears it.
  const std::size_t index = uavs_.size();
  slot.ping_subscription = bus_.subscribe<double>(
      ping_topic(raw->name()),
      [this, index](const mw::MessageHeader&, const double&) {
        const Slot& s = uavs_[index];
        if (s.uav->mode() != FlightMode::kCrashed) publish_telemetry(s);
      });
  uav_index_.emplace(raw->name(), uavs_.size());
  uavs_.push_back(std::move(slot));
  return uavs_.size() - 1;
}

void World::enable_health_heartbeats(double period_s) {
  if (period_s <= 0.0) {
    throw std::invalid_argument(
        "World::enable_health_heartbeats: non-positive period");
  }
  heartbeat_period_s_ = period_s;
  next_heartbeat_s_ = time_s_ + period_s;
}

void World::crash_uav(const std::string& name) {
  const auto it = uav_index_.find(name);
  if (it == uav_index_.end()) {
    throw std::out_of_range("World::crash_uav: " + name);
  }
  Slot& slot = uavs_[it->second];
  if (slot.uav->mode() == FlightMode::kCrashed) return;
  slot.uav->force_crash();
  slot.fix_subscription.reset();
  slot.ping_subscription.reset();
  drop_pending_from(name);
}

std::size_t World::drop_pending_from(const std::string& name) {
  return bus_.clear_delayed(bus_.intern_source(name));
}

Uav& World::uav_by_name(const std::string& name) {
  if (const auto it = uav_index_.find(name); it != uav_index_.end()) {
    return *uavs_[it->second].uav;
  }
  throw std::out_of_range("World::uav_by_name: " + name);
}

void World::add_person(const geo::EnuPoint& position) {
  persons_.push_back(Person{position, false});
}

std::size_t World::persons_detected() const {
  std::size_t n = 0;
  for (const auto& p : persons_) {
    if (p.detected) ++n;
  }
  return n;
}

void World::set_metrics(obs::MetricsRegistry* registry) {
  bus_.set_metrics(registry);
  if (registry == nullptr) {
    step_duration_ = nullptr;
    steps_total_ = nullptr;
    clock_gauge_ = nullptr;
    return;
  }
  step_duration_ = &registry->histogram("sesame.sim.step_duration_seconds", {},
                                        obs::duration_buckets_s());
  steps_total_ = &registry->counter("sesame.sim.steps_total");
  clock_gauge_ = &registry->gauge("sesame.sim.time_s");
}

void World::step(double dt_s) {
  if (dt_s <= 0.0) throw std::invalid_argument("World::step: non-positive dt");
  const auto t0 = step_duration_ != nullptr
                      ? std::chrono::steady_clock::now()
                      : std::chrono::steady_clock::time_point{};
  // Delayed messages mature on the step boundary so a "delay by N steps"
  // fault means exactly N calls to step(), independent of wall time.
  bus_.drain_delayed();
  // Phase 1: batched guidance. plan() is RNG-free and reads only the
  // vehicle's own previous-step state, so running it fleet-wide first is
  // result-identical to the old fused per-vehicle loop while streaming the
  // guidance arithmetic over the contiguous fleet arrays.
  for (auto& slot : uavs_) {
    slot.uav->plan(dt_s);
  }
  // Phase 2: stochastic pass in vehicle order — gusts, motion, GPS,
  // battery. The fleet-wide RNG draw sequence matches the pre-split
  // simulation bit-for-bit.
  for (auto& slot : uavs_) {
    slot.uav->integrate(dt_s, wind_);
  }
  time_s_ += dt_s;
  uav_grid_stale_ = true;
  for (auto& slot : uavs_) {
    // A wreck's radio is dead: no telemetry, no heartbeats.
    if (slot.uav->mode() == FlightMode::kCrashed) continue;
    publish_telemetry(slot);
  }
  if (heartbeat_period_s_ > 0.0 && time_s_ >= next_heartbeat_s_) {
    for (auto& slot : uavs_) {
      const Uav& u = *slot.uav;
      if (u.mode() == FlightMode::kCrashed) continue;
      HealthHeartbeat hb;
      hb.uav = u.name();
      hb.time_s = time_s_;
      hb.mode = u.mode();
      hb.motors_failed = u.motors_failed();
      hb.vision_sensor_healthy = u.vision_sensor_healthy();
      hb.battery_soc = u.battery().soc();
      hb.battery_fault = u.battery().fault_active();
      bus_.publish(slot.health_topic, hb, slot.source, time_s_);
    }
    while (next_heartbeat_s_ <= time_s_) next_heartbeat_s_ += heartbeat_period_s_;
  }
  if (step_duration_ != nullptr) {
    step_duration_->observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
    steps_total_->inc();
    clock_gauge_->set(time_s_);
  }
}

void World::publish_telemetry(const Slot& slot) {
  const Uav& u = *slot.uav;
  Telemetry t;
  t.uav = u.name();
  t.reported_position = u.estimated_geo();
  t.altitude_m = u.true_position().up_m;
  t.battery_soc = u.battery().soc();
  t.battery_temp_c = u.battery().temperature_c();
  t.mode = u.mode();
  t.time_s = time_s_;
  t.gps_fix = !u.gps().signal_lost() && !u.gps().disabled();
  bus_.publish(slot.telemetry_topic, t, slot.source, time_s_);
}

void World::run(std::size_t n, double dt_s) {
  for (std::size_t i = 0; i < n; ++i) step(dt_s);
}

bool World::has_neighbor_within(std::size_t i, double radius_m,
                                bool airborne_only) {
  if (i >= uavs_.size()) {
    throw std::out_of_range("World::has_neighbor_within: bad index");
  }
  if (radius_m <= 0.0) return false;
  if (uav_grid_stale_) {
    uav_grid_.rebuild(fleet_.size(),
                      [this](std::size_t j) -> const geo::EnuPoint& {
                        return fleet_.true_pos[j];
                      });
    uav_grid_stale_ = false;
  }
  const geo::EnuPoint& p = fleet_.true_pos[i];
  neighbor_scratch_.clear();
  // A ground-plane window of the query radius over-approximates the 3-D
  // ball; candidates get the exact distance test below.
  uav_grid_.query_rect(p.east_m - radius_m, p.east_m + radius_m,
                       p.north_m - radius_m, p.north_m + radius_m,
                       neighbor_scratch_);
  for (const std::uint32_t j : neighbor_scratch_) {
    if (j == i) continue;
    if (airborne_only && !uavs_[j].uav->airborne()) continue;
    if (geo::enu_distance_m(fleet_.true_pos[j], p) < radius_m) return true;
  }
  return false;
}

}  // namespace sesame::sim
