#include "sesame/sim/battery.hpp"

#include <algorithm>
#include <stdexcept>

namespace sesame::sim {

Battery::Battery(BatteryConfig config)
    : config_(config), soc_(config.initial_soc),
      temperature_c_(config.ambient_temp_c) {
  if (config_.capacity_wh <= 0.0) {
    throw std::invalid_argument("Battery: non-positive capacity");
  }
  if (config_.initial_soc < 0.0 || config_.initial_soc > 1.0) {
    throw std::invalid_argument("Battery: initial_soc out of [0,1]");
  }
}

void Battery::step(double dt_s, BatteryLoad load) {
  if (dt_s < 0.0) throw std::invalid_argument("Battery::step: negative dt");
  double draw_w = config_.idle_draw_w;
  double target_temp = config_.ambient_temp_c;
  switch (load) {
    case BatteryLoad::kIdle:
      break;
    case BatteryLoad::kCruise:
      draw_w = config_.cruise_draw_w;
      target_temp += config_.load_temp_rise_c;
      break;
    case BatteryLoad::kHover:
      draw_w = config_.hover_draw_w;
      target_temp += config_.load_temp_rise_c * 1.1;
      break;
  }
  const double used_wh = draw_w * dt_s / 3600.0;
  soc_ = std::max(0.0, soc_ - used_wh / config_.capacity_wh);

  // First-order thermal relaxation toward the load-dependent target; a
  // faulted cell holds its elevated temperature.
  if (!fault_active_) {
    const double tau_s = 120.0;
    temperature_c_ +=
        (target_temp - temperature_c_) * std::min(1.0, dt_s / tau_s);
  }
}

void Battery::inject_thermal_fault(double soc_after, double temp_c) {
  if (soc_after < 0.0 || soc_after > 1.0) {
    throw std::invalid_argument("inject_thermal_fault: soc_after out of [0,1]");
  }
  soc_ = std::min(soc_, soc_after);
  temperature_c_ = temp_c;
  fault_active_ = true;
}

void Battery::swap() {
  soc_ = 1.0;
  temperature_c_ = config_.ambient_temp_c;
  fault_active_ = false;
}

}  // namespace sesame::sim
