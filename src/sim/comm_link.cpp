#include "sesame/sim/comm_link.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sesame::sim {

CommLink::CommLink(CommLinkConfig config) : config_(config) {
  if (config_.nominal_range_m <= 0.0 ||
      config_.max_range_m <= config_.nominal_range_m) {
    throw std::invalid_argument("CommLink: need 0 < nominal < max range");
  }
  if (config_.fading_sigma < 0.0) {
    throw std::invalid_argument("CommLink: negative fading sigma");
  }
  if (config_.usable_threshold <= 0.0 || config_.usable_threshold >= 1.0) {
    throw std::invalid_argument("CommLink: usable threshold out of (0,1)");
  }
}

double CommLink::quality(double distance_m) const {
  if (distance_m < 0.0) {
    throw std::invalid_argument("CommLink::quality: negative distance");
  }
  if (distance_m <= config_.nominal_range_m) return 1.0;
  if (distance_m >= config_.max_range_m) return 0.0;
  // Linear in log-range between nominal and max: matches the dB-linear
  // path-loss picture without needing a full link budget.
  const double log_d = std::log(distance_m);
  const double log_lo = std::log(config_.nominal_range_m);
  const double log_hi = std::log(config_.max_range_m);
  return 1.0 - (log_d - log_lo) / (log_hi - log_lo);
}

double CommLink::sample_quality(double distance_m, mathx::Rng& rng) const {
  const double q = quality(distance_m);
  if (config_.fading_sigma <= 0.0 || q <= 0.0) return q;
  return std::clamp(q * (1.0 + rng.normal(0.0, config_.fading_sigma)), 0.0, 1.0);
}

double CommLink::usable_range_m() const {
  // Invert the log-linear segment at the usable threshold.
  const double log_lo = std::log(config_.nominal_range_m);
  const double log_hi = std::log(config_.max_range_m);
  return std::exp(log_lo + (1.0 - config_.usable_threshold) * (log_hi - log_lo));
}

}  // namespace sesame::sim
