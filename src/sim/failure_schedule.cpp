#include "sesame/sim/failure_schedule.hpp"

#include <algorithm>
#include <stdexcept>

#include "sesame/mathx/rng.hpp"

namespace sesame::sim {

std::string failure_mode_name(FailureMode m) {
  switch (m) {
    case FailureMode::kMotorDegradation: return "motor_degradation";
    case FailureMode::kSensorDropout: return "sensor_dropout";
    case FailureMode::kBatteryCellFault: return "battery_cell_fault";
    case FailureMode::kCommsBlackout: return "comms_blackout";
    case FailureMode::kHardCrash: return "hard_crash";
  }
  return "unknown";
}

FailureMode failure_mode_from_name(const std::string& name);

FailureMode failure_mode_from_name(const std::string& name) {
  for (const FailureMode m :
       {FailureMode::kMotorDegradation, FailureMode::kSensorDropout,
        FailureMode::kBatteryCellFault, FailureMode::kCommsBlackout,
        FailureMode::kHardCrash}) {
    if (failure_mode_name(m) == name) return m;
  }
  throw std::invalid_argument("failure_mode_from_name: unknown mode '" + name +
                              "'");
}

void FailureSchedule::sort() {
  std::stable_sort(events.begin(), events.end(),
                   [](const FailureEvent& a, const FailureEvent& b) {
                     if (a.time_s != b.time_s) return a.time_s < b.time_s;
                     if (a.uav != b.uav) return a.uav < b.uav;
                     return static_cast<int>(a.mode) < static_cast<int>(b.mode);
                   });
}

double FailureSchedule::first_event_time_s() const {
  if (events.empty()) return -1.0;
  double first = events.front().time_s;
  for (const auto& e : events) first = std::min(first, e.time_s);
  return first;
}

FailureSchedule FailureSchedule::chaos(std::uint64_t seed,
                                       const std::vector<std::string>& uavs,
                                       const ChaosProfile& profile) {
  if (profile.latest_time_s < profile.earliest_time_s ||
      profile.max_duration_s < profile.min_duration_s) {
    throw std::invalid_argument("FailureSchedule::chaos: inverted range");
  }
  mathx::Rng rng(seed);
  const std::vector<double> weights(std::begin(profile.weights),
                                    std::end(profile.weights));
  FailureSchedule schedule;
  std::size_t crashes = 0;
  for (const auto& uav : uavs) {
    const std::size_t n = static_cast<std::size_t>(
        rng.uniform_index(profile.max_events_per_uav + 1));
    for (std::size_t i = 0; i < n; ++i) {
      FailureEvent e;
      e.uav = uav;
      e.mode = static_cast<FailureMode>(rng.categorical(weights));
      if (e.mode == FailureMode::kHardCrash) {
        if (crashes >= profile.max_hard_crashes) {
          // Crash budget exhausted: degrade to a comms blackout, which
          // exercises the same detection path without downing the fleet.
          e.mode = FailureMode::kCommsBlackout;
        } else {
          ++crashes;
        }
      }
      e.time_s = rng.uniform(profile.earliest_time_s, profile.latest_time_s);
      e.duration_s =
          rng.uniform(profile.min_duration_s, profile.max_duration_s);
      e.soc_after = rng.uniform(0.25, 0.50);
      e.temp_c = rng.uniform(65.0, 80.0);
      schedule.events.push_back(std::move(e));
    }
  }
  schedule.sort();
  return schedule;
}

// Drops every message a blacked-out vehicle publishes (its radio is dead)
// and every message addressed to its C2 topics (the uplink is the same
// radio): telemetry, position fixes, pings. Pure time-window logic — no
// randomness, so the gate never perturbs any other stream.
class FailureInjector::BlackoutGate : public mw::DeliveryPolicy {
 public:
  mw::FaultDecision decide(const mw::MessageHeader& header) override {
    mw::FaultDecision d;
    if (active_.empty()) return d;
    for (const auto& name : active_) {
      if (header.source == name || topic_of(header.topic, name)) {
        d.drop = true;
        return d;
      }
    }
    return d;
  }

  void set_active(std::vector<std::string> names) {
    active_ = std::move(names);
  }

 private:
  static bool topic_of(std::string_view topic, const std::string& uav) {
    // "uav/<name>/..." — any channel of the vehicle rides its radio.
    if (!topic.starts_with("uav/")) return false;
    const std::string_view rest = topic.substr(4);
    return rest.size() > uav.size() && rest.substr(0, uav.size()) == uav &&
           rest[uav.size()] == '/';
  }

  std::vector<std::string> active_;
};

FailureInjector::FailureInjector(World& world, FailureSchedule schedule)
    : world_(&world), schedule_(std::move(schedule)) {
  schedule_.sort();
  for (const auto& e : schedule_.events) {
    world_->uav_by_name(e.uav);  // throws on a schedule naming unknown UAVs
    if (e.time_s < 0.0) {
      throw std::invalid_argument("FailureInjector: negative event time");
    }
  }
  const bool any_blackout = std::any_of(
      schedule_.events.begin(), schedule_.events.end(), [](const auto& e) {
        return e.mode == FailureMode::kCommsBlackout;
      });
  if (any_blackout) {
    gate_ = std::make_unique<BlackoutGate>();
    gate_sub_ = world_->bus().add_delivery_policy(gate_.get());
  }
}

FailureInjector::~FailureInjector() = default;

bool FailureInjector::comms_blacked_out(const std::string& uav) const {
  for (const auto& o : outages_) {
    if (o.mode == FailureMode::kCommsBlackout && o.uav == uav) return true;
  }
  return false;
}

std::size_t FailureInjector::step(double now_s) {
  // Expire finished outages first so a dropout ending exactly when another
  // begins hands over cleanly.
  for (std::size_t i = 0; i < outages_.size();) {
    const Outage& o = outages_[i];
    if (!o.forever && now_s >= o.until_s) {
      if (o.mode == FailureMode::kSensorDropout &&
          !comms_blacked_out(o.uav)) {
        // restore handled below after erase (may be re-blinded by a
        // concurrent outage on the same vehicle)
      }
      const Outage ended = o;
      outages_.erase(outages_.begin() + static_cast<std::ptrdiff_t>(i));
      if (ended.mode == FailureMode::kSensorDropout) {
        bool still_blind = false;
        for (const auto& other : outages_) {
          if (other.mode == FailureMode::kSensorDropout &&
              other.uav == ended.uav) {
            still_blind = true;
            break;
          }
        }
        if (!still_blind) {
          world_->uav_by_name(ended.uav).set_vision_sensor_healthy(true);
        }
      }
      continue;
    }
    ++i;
  }

  std::size_t newly_applied = 0;
  while (next_event_ < schedule_.events.size() &&
         schedule_.events[next_event_].time_s <= now_s) {
    apply(schedule_.events[next_event_], now_s);
    ++next_event_;
    ++applied_;
    ++newly_applied;
  }

  if (gate_ != nullptr) {
    std::vector<std::string> active;
    for (const auto& o : outages_) {
      if (o.mode == FailureMode::kCommsBlackout) active.push_back(o.uav);
    }
    gate_->set_active(std::move(active));
  }
  return newly_applied;
}

void FailureInjector::apply(const FailureEvent& event, double now_s) {
  Uav& uav = world_->uav_by_name(event.uav);
  switch (event.mode) {
    case FailureMode::kMotorDegradation:
      uav.fail_motor();
      break;
    case FailureMode::kSensorDropout: {
      uav.set_vision_sensor_healthy(false);
      Outage o;
      o.uav = event.uav;
      o.mode = event.mode;
      o.forever = event.duration_s <= 0.0;
      o.until_s = now_s + event.duration_s;
      outages_.push_back(std::move(o));
      break;
    }
    case FailureMode::kBatteryCellFault:
      // Only collapse downward: a fault cannot recharge the pack.
      uav.battery().inject_thermal_fault(
          std::min(event.soc_after, uav.battery().soc()), event.temp_c);
      break;
    case FailureMode::kCommsBlackout: {
      Outage o;
      o.uav = event.uav;
      o.mode = event.mode;
      o.forever = event.duration_s <= 0.0;
      o.until_s = now_s + event.duration_s;
      outages_.push_back(std::move(o));
      break;
    }
    case FailureMode::kHardCrash:
      world_->crash_uav(event.uav);
      break;
  }
}

}  // namespace sesame::sim
