#include "sesame/sim/gps.hpp"

#include <stdexcept>

namespace sesame::sim {

Gps::Gps(GpsConfig config, mathx::Rng& rng) : config_(config), rng_(&rng) {
  if (config_.noise_sigma_m < 0.0 || config_.spoof_drift_m_per_s < 0.0) {
    throw std::invalid_argument("Gps: negative noise or drift");
  }
}

std::optional<GpsFix> Gps::read(const geo::GeoPoint& true_position, double dt_s) {
  if (dt_s < 0.0) throw std::invalid_argument("Gps::read: negative dt");
  if (spoofing_) spoof_offset_m_ += config_.spoof_drift_m_per_s * dt_s;
  if (signal_lost_ || disabled_) return std::nullopt;

  geo::GeoPoint reported = true_position;
  if (spoofing_ && spoof_offset_m_ > 0.0) {
    reported =
        geo::destination(reported, config_.spoof_bearing_deg, spoof_offset_m_);
  }
  // Healthy receiver noise, applied in a random direction.
  const double noise = rng_->normal(0.0, config_.noise_sigma_m);
  const double noise_bearing = rng_->uniform(0.0, 360.0);
  if (noise != 0.0) {
    reported = geo::destination(reported, noise_bearing, std::abs(noise));
  }

  GpsFix fix;
  fix.position = reported;
  fix.horizontal_accuracy_m = config_.noise_sigma_m;
  fix.satellites = config_.healthy_satellites;
  return fix;
}

void Gps::start_spoofing() { spoofing_ = true; }

void Gps::stop_spoofing() {
  spoofing_ = false;
  spoof_offset_m_ = 0.0;
}

}  // namespace sesame::sim
