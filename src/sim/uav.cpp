#include "sesame/sim/uav.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sesame::sim {

std::string flight_mode_name(FlightMode m) {
  switch (m) {
    case FlightMode::kIdle: return "Idle";
    case FlightMode::kTakeoff: return "Takeoff";
    case FlightMode::kMission: return "Mission";
    case FlightMode::kHold: return "Hold";
    case FlightMode::kReturnToBase: return "ReturnToBase";
    case FlightMode::kEmergencyLand: return "EmergencyLand";
    case FlightMode::kLanded: return "Landed";
    case FlightMode::kCrashed: return "Crashed";
  }
  return "unknown";
}

Uav::Uav(UavConfig config, const geo::LocalFrame& frame, const geo::GeoPoint& home,
         mathx::Rng& rng, FleetState& fleet, std::size_t index)
    : config_(std::move(config)), frame_(&frame), rng_(&rng), fleet_(&fleet),
      index_(index), battery_(config_.battery), gps_(config_.gps, rng) {
  if (config_.cruise_speed_mps <= 0.0 || config_.climb_rate_mps <= 0.0 ||
      config_.descent_rate_mps <= 0.0) {
    throw std::invalid_argument("Uav: non-positive speed");
  }
  home_ = frame_->to_enu(home);
  home_.up_m = 0.0;
  true_pos() = home_;
  est_pos() = home_;
  fleet_->soc[index_] = battery_.soc();
}

double Uav::estimation_error_m() const {
  return geo::enu_ground_distance_m(true_pos(), est_pos());
}

void Uav::add_waypoint(const geo::EnuPoint& wp) { waypoints_.push_back(wp); }

void Uav::clear_waypoints() { waypoints_.clear(); }

double Uav::remaining_path_length_m() const {
  if (waypoints_.empty()) return 0.0;
  double total = geo::enu_distance_m(est_pos(), waypoints_.front());
  for (std::size_t i = 1; i < waypoints_.size(); ++i) {
    total += geo::enu_distance_m(waypoints_[i - 1], waypoints_[i]);
  }
  return total;
}

void Uav::lower_waypoints_to(double altitude_m) {
  if (altitude_m <= 0.0) {
    throw std::invalid_argument("lower_waypoints_to: non-positive altitude");
  }
  for (auto& wp : waypoints_) wp.up_m = std::min(wp.up_m, altitude_m);
}

std::size_t Uav::transfer_waypoints_to(Uav& other) {
  if (&other == this) {
    throw std::invalid_argument("transfer_waypoints_to: self transfer");
  }
  const std::size_t moved = waypoints_.size();
  for (const auto& wp : waypoints_) other.waypoints_.push_back(wp);
  waypoints_.clear();
  return moved;
}

void Uav::command_takeoff() {
  if (mode_ == FlightMode::kIdle || mode_ == FlightMode::kLanded) {
    mode_ = FlightMode::kTakeoff;
  }
}

void Uav::command_hold() {
  if (airborne()) mode_ = FlightMode::kHold;
}

void Uav::command_resume_mission() {
  if (airborne()) mode_ = FlightMode::kMission;
}

void Uav::command_return_to_base() {
  if (airborne()) mode_ = FlightMode::kReturnToBase;
}

void Uav::command_emergency_land() {
  if (airborne()) {
    mode_ = FlightMode::kEmergencyLand;
    emergency_anchor_ = est_pos();
  }
}

void Uav::correct_estimate(const geo::GeoPoint& fix) {
  const geo::EnuPoint e = frame_->to_enu(fix);
  est_pos().east_m = e.east_m;
  est_pos().north_m = e.north_m;
  // Altitude comes from the barometer in practice; keep our own.
}

bool Uav::airborne() const noexcept {
  return mode_ == FlightMode::kTakeoff || mode_ == FlightMode::kMission ||
         mode_ == FlightMode::kHold || mode_ == FlightMode::kReturnToBase ||
         mode_ == FlightMode::kEmergencyLand;
}

void Uav::force_crash() {
  mode_ = FlightMode::kCrashed;
  true_pos().up_m = 0.0;
  est_pos().up_m = 0.0;
  cmd_east_mps() = cmd_north_mps() = cmd_up_mps() = 0.0;
}

void Uav::fail_motor() {
  ++motors_failed_;
  if (motors_failed_ > config_.tolerable_motor_failures && airborne()) {
    command_emergency_land();
  }
}

double Uav::effective_cruise_speed() const {
  const double tolerated = static_cast<double>(
      std::min(motors_failed_, config_.tolerable_motor_failures));
  return config_.cruise_speed_mps *
         std::max(0.2, 1.0 - config_.motor_failure_speed_penalty * tolerated);
}

void Uav::navigate_towards(const geo::EnuPoint& target, double dt_s) {
  // Proportional guidance on the *estimated* position.
  const double de = target.east_m - est_pos().east_m;
  const double dn = target.north_m - est_pos().north_m;
  const double du = target.up_m - est_pos().up_m;
  const double ground = std::sqrt(de * de + dn * dn);

  double ve = 0.0, vn = 0.0;
  if (ground > 1e-6) {
    const double speed =
        std::min(effective_cruise_speed(), ground / std::max(dt_s, 1e-6));
    ve = de / ground * speed;
    vn = dn / ground * speed;
  }
  double vu = 0.0;
  if (std::abs(du) > 1e-6) {
    const double rate = du > 0.0 ? config_.climb_rate_mps : config_.descent_rate_mps;
    vu = std::clamp(du / std::max(dt_s, 1e-6), -rate, rate);
  }
  cmd_east_mps() = ve;
  cmd_north_mps() = vn;
  cmd_up_mps() = vu;
}

void Uav::update_estimate(double dt_s) {
  const auto fix = gps_.read(true_geo(), dt_s);
  if (fix.has_value()) {
    const geo::EnuPoint e = frame_->to_enu(fix->position);
    est_pos().east_m = e.east_m;
    est_pos().north_m = e.north_m;
    est_pos().up_m = true_pos().up_m;  // barometric altitude: near-truth
  } else {
    // Dead reckoning on commanded velocity; wind drift goes unnoticed.
    est_pos().east_m += cmd_east_mps() * dt_s;
    est_pos().north_m += cmd_north_mps() * dt_s;
    est_pos().up_m = true_pos().up_m;
  }
}

void Uav::apply_motion(double dt_s, const Wind& wind) {
  double gust_e = 0.0, gust_n = 0.0;
  if (wind.gust_sigma_mps > 0.0) {
    gust_e = rng_->normal(0.0, wind.gust_sigma_mps);
    gust_n = rng_->normal(0.0, wind.gust_sigma_mps);
  }
  const double ve = cmd_east_mps() + (airborne() ? wind.east_mps + gust_e : 0.0);
  const double vn = cmd_north_mps() + (airborne() ? wind.north_mps + gust_n : 0.0);
  const double de = ve * dt_s;
  const double dn = vn * dt_s;
  const double du = cmd_up_mps() * dt_s;
  true_pos().east_m += de;
  true_pos().north_m += dn;
  true_pos().up_m = std::max(0.0, true_pos().up_m + du);
  odometer_m_ += std::sqrt(de * de + dn * dn + du * du);
}

void Uav::step(double dt_s, const Wind& wind) {
  if (dt_s <= 0.0) throw std::invalid_argument("Uav::step: non-positive dt");
  plan(dt_s);
  integrate(dt_s, wind);
}

void Uav::plan(double dt_s) {
  if (dt_s <= 0.0) throw std::invalid_argument("Uav::plan: non-positive dt");
  if (mode_ == FlightMode::kCrashed) return;  // wreckage does not fly

  cmd_east_mps() = cmd_north_mps() = cmd_up_mps() = 0.0;
  BatteryLoad load = BatteryLoad::kIdle;

  switch (mode_) {
    case FlightMode::kIdle:
    case FlightMode::kLanded:
    case FlightMode::kCrashed:
      break;

    case FlightMode::kTakeoff: {
      geo::EnuPoint up = est_pos();
      up.up_m = config_.mission_altitude_m;
      navigate_towards(up, dt_s);
      load = BatteryLoad::kHover;
      if (true_pos().up_m >= config_.mission_altitude_m - 0.5) {
        mode_ = waypoints_.empty() ? FlightMode::kHold : FlightMode::kMission;
      }
      break;
    }

    case FlightMode::kMission: {
      if (waypoints_.empty()) {
        mode_ = FlightMode::kHold;
        load = BatteryLoad::kHover;
        break;
      }
      navigate_towards(waypoints_.front(), dt_s);
      load = BatteryLoad::kCruise;
      const double d = geo::enu_distance_m(est_pos(), waypoints_.front());
      if (d <= config_.waypoint_capture_m) {
        waypoints_.pop_front();
        if (waypoints_.empty()) mode_ = FlightMode::kHold;
      }
      break;
    }

    case FlightMode::kHold:
      load = BatteryLoad::kHover;
      break;

    case FlightMode::kReturnToBase: {
      geo::EnuPoint above_home = home_;
      above_home.up_m = config_.mission_altitude_m;
      const double ground_d = geo::enu_ground_distance_m(est_pos(), home_);
      if (ground_d > config_.waypoint_capture_m) {
        navigate_towards(above_home, dt_s);
        load = BatteryLoad::kCruise;
      } else {
        geo::EnuPoint down = est_pos();
        down.up_m = 0.0;
        navigate_towards(down, dt_s);
        load = BatteryLoad::kHover;
        if (true_pos().up_m <= 0.05) mode_ = FlightMode::kLanded;
      }
      break;
    }

    case FlightMode::kEmergencyLand: {
      geo::EnuPoint down = emergency_anchor_;
      down.up_m = 0.0;
      navigate_towards(down, dt_s);
      load = BatteryLoad::kHover;
      if (true_pos().up_m <= 0.05) mode_ = FlightMode::kLanded;
      break;
    }
  }

  planned_load_ = load;
}

void Uav::integrate(double dt_s, const Wind& wind) {
  if (dt_s <= 0.0) {
    throw std::invalid_argument("Uav::integrate: non-positive dt");
  }
  if (mode_ == FlightMode::kCrashed) return;

  apply_motion(dt_s, wind);
  update_estimate(dt_s);
  battery_.step(dt_s, planned_load_);
  fleet_->soc[index_] = battery_.soc();
  if (battery_.depleted() && airborne() &&
      mode_ != FlightMode::kEmergencyLand) {
    // A dead pack means an uncontrolled descent; model as emergency land.
    command_emergency_land();
  }
}

}  // namespace sesame::sim
