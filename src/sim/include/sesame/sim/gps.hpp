// GPS receiver model with spoofing and signal-loss injection.
//
// The paper's security scenario (Figs. 6-7) hinges on falsified position
// data steering a UAV off its mapping trajectory, and on flying the victim
// home *without* GPS once the attack is detected. This model produces
// fixes = truth + white noise under normal conditions, applies an
// attacker-controlled drift when spoofed, and reports no fix when the
// signal is lost or the receiver is disabled after attack detection.
#pragma once

#include <optional>

#include "sesame/geo/geodesy.hpp"
#include "sesame/mathx/rng.hpp"

namespace sesame::sim {

/// Quality metadata a real receiver would report alongside the fix.
struct GpsFix {
  geo::GeoPoint position;
  double horizontal_accuracy_m = 0.0;  ///< receiver-claimed 1-sigma accuracy
  int satellites = 0;
  /// Note: a *spoofed* receiver still reports good quality figures — the
  /// attack is not visible in this struct, which is exactly the problem.
};

struct GpsConfig {
  double noise_sigma_m = 0.4;       ///< healthy horizontal noise
  int healthy_satellites = 14;
  /// Spoofing drift rate: how fast the attacker walks the fix away from
  /// the true position (metres of offset added per second of attack).
  double spoof_drift_m_per_s = 2.0;
  double spoof_bearing_deg = 90.0;  ///< direction the fix is walked toward
};

/// Simulated GPS receiver bound to one UAV.
class Gps {
 public:
  Gps(GpsConfig config, mathx::Rng& rng);

  /// Produces the fix for the current true position, advancing internal
  /// attack state by dt seconds. Returns nullopt when the signal is lost
  /// or the receiver has been disabled.
  std::optional<GpsFix> read(const geo::GeoPoint& true_position, double dt_s);

  /// Starts/stops a spoofing attack. While active, the reported fix drifts
  /// away from the truth at the configured rate.
  void start_spoofing();
  void stop_spoofing();
  bool spoofing_active() const noexcept { return spoofing_; }

  /// Current accumulated spoof offset magnitude (metres).
  double spoof_offset_m() const noexcept { return spoof_offset_m_; }

  /// Simulates total signal loss (e.g. jamming or canyon shadowing).
  void set_signal_lost(bool lost) { signal_lost_ = lost; }
  bool signal_lost() const noexcept { return signal_lost_; }

  /// Operator/ConSert-commanded receiver disable: once the Security EDDI
  /// flags spoofing, navigation must stop trusting this receiver.
  void set_disabled(bool disabled) { disabled_ = disabled; }
  bool disabled() const noexcept { return disabled_; }

 private:
  GpsConfig config_;
  mathx::Rng* rng_;
  bool spoofing_ = false;
  bool signal_lost_ = false;
  bool disabled_ = false;
  double spoof_offset_m_ = 0.0;
};

}  // namespace sesame::sim
