// Wire schemas for the simulation-layer payloads (docs/PROTOCOL.md §5).
//
// The mw codec ships only the primitive payloads; every domain type that
// crosses a bus bridge registers its encoding here. Tags are protocol
// constants shared by every federation endpoint — never renumber a
// released tag, allocate the next free one.
#pragma once

#include <cstdint>

#include "sesame/mw/codec.hpp"

namespace sesame::sim {

/// geo::GeoPoint — position fixes on `uav/<name>/position_fix`.
inline constexpr std::uint32_t kGeoPointTag = 0x10;
/// sim::Telemetry — `uav/<name>/telemetry`.
inline constexpr std::uint32_t kTelemetryTag = 0x11;
/// sim::HealthHeartbeat — `uav/<name>/health`.
inline constexpr std::uint32_t kHealthHeartbeatTag = 0x12;

/// Registers GeoPoint, Telemetry and HealthHeartbeat on `codec`.
/// Idempotence is the codec's rule: registering twice throws.
void register_wire_types(mw::Codec& codec);

}  // namespace sesame::sim
