// Per-vehicle failure schedules: UAV-level fault modes for robustness
// testing.
//
// The mw::FaultPlan layer (docs/FAULT_INJECTION.md) perturbs *messages*;
// this layer perturbs *vehicles*. A FailureSchedule lists timed fault
// events against named UAVs — motor-efficiency degradation, vision-sensor
// dropout, battery-cell faults, comms blackouts and hard crashes — and a
// FailureInjector applies them as the world clock passes each event time.
// Both layers compose: a chaos campaign can fly a fleet through message
// loss *and* vehicle failures in the same run.
//
// Determinism contract (the same one the campaign layer relies on):
//  - A schedule is plain data, sorted by (time, uav, mode); applying it
//    draws nothing from the world RNG, so enabling a schedule never
//    perturbs the trajectories of vehicles it does not touch.
//  - FailureSchedule::chaos(seed, ...) derives a randomized schedule from
//    its own splitmix/xoshiro stream: the same (seed, fleet, profile)
//    yields the same schedule on every platform and thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sesame/mw/bus.hpp"
#include "sesame/sim/world.hpp"

namespace sesame::sim {

/// Vehicle-level fault modes (survey taxonomy: actuation, sensing, power,
/// communication, total loss).
enum class FailureMode {
  kMotorDegradation,  ///< one motor fails; reconfiguration sheds authority
  kSensorDropout,     ///< vision sensor blind for `duration_s`
  kBatteryCellFault,  ///< thermal cell fault: SoC collapses to `soc_after`
  kCommsBlackout,     ///< all C2 traffic of this UAV lost for `duration_s`
  kHardCrash,         ///< total loss at `time_s`: vehicle down, radio dead
};

std::string failure_mode_name(FailureMode m);
/// Inverse of failure_mode_name. Throws std::invalid_argument on an
/// unknown name (config files are validated, not silently defaulted).
FailureMode failure_mode_from_name(const std::string& name);

/// One timed fault against one vehicle.
struct FailureEvent {
  std::string uav;
  FailureMode mode = FailureMode::kSensorDropout;
  double time_s = 0.0;
  /// Outage length for kSensorDropout / kCommsBlackout (others ignore it;
  /// <= 0 means the outage never ends).
  double duration_s = 0.0;
  /// kBatteryCellFault: usable charge after the collapse.
  double soc_after = 0.35;
  /// kBatteryCellFault: cell temperature after the fault.
  double temp_c = 70.0;
};

/// Chaos-derivation knobs: how aggressive a randomized schedule is.
struct ChaosProfile {
  /// Events drawn per vehicle: uniform in [0, max_events_per_uav].
  std::size_t max_events_per_uav = 2;
  /// Event times are uniform in [earliest_time_s, latest_time_s].
  double earliest_time_s = 60.0;
  double latest_time_s = 600.0;
  /// Outage lengths for dropout/blackout events.
  double min_duration_s = 15.0;
  double max_duration_s = 60.0;
  /// Relative draw weights per mode, in FailureMode declaration order
  /// (motor, sensor, battery, comms, crash). Crash is rare by default:
  /// one per run is already a fleet-level emergency.
  double weights[5] = {1.0, 1.0, 1.0, 1.0, 0.5};
  /// At most this many hard crashes across the whole fleet (a schedule
  /// that downs every vehicle tests nothing but the mission timeout).
  std::size_t max_hard_crashes = 1;
};

/// A per-vehicle fault timetable.
struct FailureSchedule {
  std::vector<FailureEvent> events;

  /// Canonical order: (time, uav, mode). Application order is then a pure
  /// function of the schedule, not of construction order.
  void sort();

  /// Earliest scheduled event time; -1 when the schedule is empty.
  double first_event_time_s() const;

  /// Derives a randomized schedule for `uavs` from `seed` alone — same
  /// inputs, same schedule, independent of threads or call site.
  static FailureSchedule chaos(std::uint64_t seed,
                               const std::vector<std::string>& uavs,
                               const ChaosProfile& profile = {});
};

/// Applies a FailureSchedule to a world as mission time passes. Step once
/// per world step, *after* World::step, with the current mission clock.
///
/// Comms blackouts install a DeliveryPolicy on the world's bus that drops
/// every message published by the blacked-out vehicle and every message
/// addressed to its C2 topics while the outage is active; the policy is
/// time-driven and draws no randomness. Hard crashes go through
/// World::crash_uav, which also drains the vehicle's queued delayed
/// messages (a dead radio cannot deliver what it never finished sending).
class FailureInjector {
 public:
  FailureInjector(World& world, FailureSchedule schedule);
  ~FailureInjector();
  FailureInjector(const FailureInjector&) = delete;
  FailureInjector& operator=(const FailureInjector&) = delete;

  /// Applies every event whose time has arrived and expires finished
  /// outages. Returns the number of events newly applied this call.
  std::size_t step(double now_s);

  /// Events applied so far.
  std::size_t events_applied() const noexcept { return applied_; }

  /// True while the named vehicle is inside an active comms blackout.
  bool comms_blacked_out(const std::string& uav) const;

  const FailureSchedule& schedule() const noexcept { return schedule_; }

 private:
  class BlackoutGate;  // DeliveryPolicy (defined in failure_schedule.cpp)

  void apply(const FailureEvent& event, double now_s);

  World* world_;
  FailureSchedule schedule_;
  std::size_t next_event_ = 0;
  std::size_t applied_ = 0;

  /// Active timed outages, expired by step().
  struct Outage {
    std::string uav;
    FailureMode mode = FailureMode::kSensorDropout;
    double until_s = 0.0;  ///< <= start means never expires
    bool forever = false;
  };
  std::vector<Outage> outages_;

  std::unique_ptr<BlackoutGate> gate_;
  mw::Subscription gate_sub_;
};

}  // namespace sesame::sim
