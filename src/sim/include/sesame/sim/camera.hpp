// Downward-facing camera geometry.
//
// Computes the ground footprint of a nadir-pointing camera and which
// world points fall inside it. The perception module layers the detection
// quality model (altitude-dependent miss/false-alarm rates) on top; this
// header is pure geometry.
#pragma once

#include <vector>

#include "sesame/geo/geodesy.hpp"

namespace sesame::sim {

struct CameraConfig {
  double hfov_deg = 69.0;  ///< horizontal field of view
  double vfov_deg = 55.0;  ///< vertical field of view
  std::size_t image_width_px = 1280;
  std::size_t image_height_px = 720;
};

/// Rectangular ground footprint of a nadir camera at a given position.
struct Footprint {
  double center_east_m = 0.0;
  double center_north_m = 0.0;
  double half_width_m = 0.0;   ///< east extent (from hfov)
  double half_height_m = 0.0;  ///< north extent (from vfov)

  bool contains(const geo::EnuPoint& p) const;
  double area_m2() const { return 4.0 * half_width_m * half_height_m; }
};

class Camera {
 public:
  explicit Camera(CameraConfig config = {});

  const CameraConfig& config() const noexcept { return config_; }

  /// Footprint from a camera at `pos` looking straight down. Altitude at
  /// or below ground yields an empty (zero-area) footprint.
  Footprint footprint(const geo::EnuPoint& pos) const;

  /// Ground sample distance (m/pixel) at the given altitude: the driver of
  /// detection quality — higher altitude, coarser pixels, weaker detections.
  double ground_sample_distance_m(double altitude_m) const;

  /// Indices of `points` inside the footprint of a camera at `pos`.
  std::vector<std::size_t> visible(const geo::EnuPoint& pos,
                                   const std::vector<geo::EnuPoint>& points) const;

 private:
  CameraConfig config_;
  double tan_half_hfov_;
  double tan_half_vfov_;
};

}  // namespace sesame::sim
