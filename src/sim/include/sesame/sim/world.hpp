// The multi-UAV world: vehicles, persons to be found, wind, the mission
// clock, and the message-bus wiring that mirrors the paper's ROS setup.
//
// Every step the world advances each UAV and publishes its telemetry on
// `uav/<name>/telemetry`. Each UAV also *subscribes* to
// `uav/<name>/position_fix` (geo::GeoPoint payload) and trusts whatever
// arrives there — this is the unauthenticated ROS-style channel both
// Collaborative Localization (legitimate corrections) and the spoofing
// attacker (falsified corrections) use, exactly the property the paper's
// security scenario exploits.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sesame/geo/geodesy.hpp"
#include "sesame/mathx/rng.hpp"
#include "sesame/mw/bus.hpp"
#include "sesame/obs/metrics.hpp"
#include "sesame/sim/comm_link.hpp"
#include "sesame/sim/fleet_state.hpp"
#include "sesame/sim/spatial_grid.hpp"
#include "sesame/sim/uav.hpp"

namespace sesame::sim {

/// Telemetry sample published by each UAV every step.
struct Telemetry {
  std::string uav;
  geo::GeoPoint reported_position;  ///< the UAV's own estimate (spoofable)
  double altitude_m = 0.0;
  double battery_soc = 1.0;
  double battery_temp_c = 25.0;
  FlightMode mode = FlightMode::kIdle;
  double time_s = 0.0;
  bool gps_fix = true;
};

/// A person to be located by the SAR mission.
struct Person {
  geo::EnuPoint position;
  bool detected = false;
};

/// Health heartbeat published by each UAV on `uav/<name>/health` when
/// heartbeats are enabled. Leaner and lower-rate than telemetry: the
/// RecoveryManager's liveness signal. A vehicle that stops heartbeating is
/// blacked out or down.
struct HealthHeartbeat {
  std::string uav;
  double time_s = 0.0;
  FlightMode mode = FlightMode::kIdle;
  std::size_t motors_failed = 0;
  bool vision_sensor_healthy = true;
  double battery_soc = 1.0;
  bool battery_fault = false;
};

/// Topic helpers shared by the platform, EDDIs and attackers.
std::string telemetry_topic(const std::string& uav_name);
std::string position_fix_topic(const std::string& uav_name);
/// Recovery channels: the GCS pings `uav/<name>/ping` (payload: double,
/// the ping time); a live vehicle answers with an immediate telemetry
/// publication. Heartbeats ride `uav/<name>/health` (HealthHeartbeat).
std::string ping_topic(const std::string& uav_name);
std::string health_topic(const std::string& uav_name);

/// Radio model for the UAV↔GCS C2 links: every `uav/<name>/telemetry` and
/// `uav/<name>/position_fix` publication rides the named UAV's link, and is
/// dropped with probability 1 − CommLink::sample_quality(ground distance
/// from that UAV to `gcs_enu`). Fading draws come from a dedicated stream
/// seeded with `seed`, so enabling the link model never perturbs the world
/// RNG (trajectories are unchanged).
struct LossyLinkConfig {
  CommLinkConfig link;
  geo::EnuPoint gcs_enu{0.0, 0.0, 0.0};  ///< ground-station position
  std::uint64_t seed = 1;
};

class World {
 public:
  /// `origin` anchors the local ENU frame (mission-area corner).
  World(const geo::GeoPoint& origin, std::uint64_t seed = 1);
  ~World();
  World(World&&) noexcept;
  World& operator=(World&&) noexcept;

  const geo::LocalFrame& frame() const noexcept { return frame_; }
  mw::Bus& bus() noexcept { return bus_; }
  mathx::Rng& rng() noexcept { return rng_; }
  double time_s() const noexcept { return time_s_; }
  Wind& wind() noexcept { return wind_; }

  /// Adds a UAV at `home`; returns its index. Wires telemetry publication
  /// and the position-fix subscription.
  std::size_t add_uav(UavConfig config, const geo::GeoPoint& home);

  std::size_t num_uavs() const noexcept { return uavs_.size(); }
  Uav& uav(std::size_t i) { return *uavs_.at(i).uav; }
  const Uav& uav(std::size_t i) const { return *uavs_.at(i).uav; }

  /// The fleet's struct-of-arrays hot state (positions, velocity commands,
  /// battery SoC mirror, link quality), indexed by vehicle add-order.
  const FleetState& fleet() const noexcept { return fleet_; }

  /// True when any *other* vehicle is within `radius_m` 3-D distance of
  /// vehicle `i`. `airborne_only` restricts the match to flying vehicles
  /// (the collaborative-localization availability check: a wreck cannot
  /// assist); when false, grounded and crashed vehicles count too
  /// (separation sweeps treat wrecks as obstacles). Backed by a
  /// uniform-grid index refreshed lazily after each step, so a fleet-wide
  /// sweep costs O(N · cells) instead of the all-pairs O(N^2) scan.
  bool has_neighbor_within(std::size_t i, double radius_m,
                           bool airborne_only = false);

  /// Finds a UAV by name; throws std::out_of_range when absent.
  Uav& uav_by_name(const std::string& name);

  /// Persons placed in the mission area.
  void add_person(const geo::EnuPoint& position);
  std::vector<Person>& persons() noexcept { return persons_; }
  const std::vector<Person>& persons() const noexcept { return persons_; }
  std::size_t persons_detected() const;

  /// Installs a distance-dependent drop policy on the bus (see
  /// LossyLinkConfig). Throws std::logic_error if already enabled.
  void enable_lossy_links(const LossyLinkConfig& config);
  bool lossy_links_enabled() const noexcept { return link_gate_ != nullptr; }

  /// Enables periodic HealthHeartbeat publication (every `period_s` of
  /// mission time, on `uav/<name>/health`) for every vehicle that is not
  /// crashed. Throws std::invalid_argument on a non-positive period.
  void enable_health_heartbeats(double period_s);
  bool health_heartbeats_enabled() const noexcept {
    return heartbeat_period_s_ > 0.0;
  }

  /// Total loss of the named vehicle: forces it into FlightMode::kCrashed,
  /// tears down its bus wiring (position-fix and ping subscriptions — a
  /// wreck answers nothing) and drains its queued delayed messages (a dead
  /// radio cannot deliver what it never finished sending). The slot stays
  /// in the fleet so surviving code can still inspect the wreck's state and
  /// transfer its waypoints. Idempotent. Throws std::out_of_range on an
  /// unknown name.
  void crash_uav(const std::string& name);

  /// Drops the pending fault-delayed deliveries published by the named
  /// vehicle, leaving everyone else's in-flight traffic untouched. Returns
  /// the number dropped. (crash_uav calls this; exposed for the recovery
  /// layer, which must also drain when *declaring* a vehicle lost — e.g.
  /// after a blackout timeout — without a crash event.)
  std::size_t drop_pending_from(const std::string& name);

  /// Discards bus state left over from a completed run — pending
  /// fault-delayed deliveries and the message journal — so a world (and
  /// its bus) reused for a fresh scenario starts clean instead of
  /// replaying the previous run's in-flight traffic into the next run's
  /// subscribers. Vehicles, persons and the mission clock are untouched.
  /// Teardown does the same implicitly. Returns the number of delayed
  /// deliveries dropped.
  std::size_t reset_pending_comms();

  /// Advances the whole world by dt seconds: first drains bus messages whose
  /// fault-injected delay expires this step, then steps every UAV, publishes
  /// telemetry, and increments the clock.
  void step(double dt_s);

  /// Runs `n` steps of dt seconds each.
  void run(std::size_t n, double dt_s);

  /// Attaches (nullptr: detaches) a metrics registry to the world *and its
  /// bus*. The world maintains `sesame.sim.step_duration_seconds` (wall
  /// time per step), `sesame.sim.steps_total` and the mission-clock gauge
  /// `sesame.sim.time_s`; the bus adds its per-topic counters/latency.
  void set_metrics(obs::MetricsRegistry* registry);

 private:
  geo::LocalFrame frame_;
  mathx::Rng rng_;
  mw::Bus bus_;
  Wind wind_;
  double time_s_ = 0.0;
  // Declared before uavs_: every Uav view points into it, so it must
  // outlive them (members destroy in reverse declaration order).
  FleetState fleet_;

  struct Slot {
    std::unique_ptr<Uav> uav;
    mw::Subscription fix_subscription;
    mw::Subscription ping_subscription;
    // Resolved once at add_uav so the per-step telemetry publish is a pure
    // id-keyed bus call (no topic-string building, no interning lookups).
    mw::TopicId telemetry_topic;
    mw::TopicId health_topic;
    mw::SourceId source;
  };

  void publish_telemetry(const Slot& slot);
  std::vector<Slot> uavs_;
  /// name → index into uavs_ (uav_by_name is on the per-tick hot path).
  std::map<std::string, std::size_t, std::less<>> uav_index_;
  std::vector<Person> persons_;

  class LinkGate;  // the lossy-link DeliveryPolicy (defined in world.cpp)
  std::unique_ptr<LinkGate> link_gate_;
  mw::Subscription link_gate_sub_;  // after bus_: released before bus_ dies

  double heartbeat_period_s_ = 0.0;  ///< <= 0: heartbeats off
  double next_heartbeat_s_ = 0.0;

  SpatialGrid uav_grid_{125.0};
  bool uav_grid_stale_ = true;
  std::vector<std::uint32_t> neighbor_scratch_;

  obs::Histogram* step_duration_ = nullptr;
  obs::Counter* steps_total_ = nullptr;
  obs::Gauge* clock_gauge_ = nullptr;
};

}  // namespace sesame::sim
