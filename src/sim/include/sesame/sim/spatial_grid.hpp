// Uniform-grid spatial index over ENU ground positions.
//
// Fleet-scale queries (person-detection geometry, neighbor checks) are
// O(all pairs) when every vehicle scans every point per tick; bucketing
// points into ground-plane cells turns each query into a visit of the few
// cells overlapping the query window. Candidates are returned in ascending
// index order so RNG-consuming callers (the person detector draws per
// candidate) keep a draw order that is independent of bucket layout — the
// bit-identity contract extends to the index.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace sesame::sim {

class SpatialGrid {
 public:
  explicit SpatialGrid(double cell_m = 50.0) : cell_m_(cell_m) {
    if (cell_m_ <= 0.0) {
      throw std::invalid_argument("SpatialGrid: non-positive cell size");
    }
  }

  double cell_m() const noexcept { return cell_m_; }
  std::size_t indexed_points() const noexcept { return n_points_; }

  /// Rebuilds the index over `n` points; `point_of(i)` must return
  /// something with `east_m`/`north_m` members. Bucket storage is reused
  /// across rebuilds, so a once-per-step refresh does not allocate in
  /// steady state.
  template <class GetPoint>
  void rebuild(std::size_t n, GetPoint&& point_of) {
    for (auto& [key, bucket] : cells_) bucket.clear();
    n_points_ = n;
    for (std::size_t i = 0; i < n; ++i) {
      const auto& p = point_of(i);
      cells_[key_of(cell_coord(p.east_m), cell_coord(p.north_m))].push_back(
          static_cast<std::uint32_t>(i));
    }
  }

  /// Appends the indices of every point whose cell overlaps the rectangle
  /// [east_lo, east_hi] x [north_lo, north_hi] to `out`, sorted ascending.
  /// Callers apply their exact geometric test to the candidates.
  void query_rect(double east_lo, double east_hi, double north_lo,
                  double north_hi, std::vector<std::uint32_t>& out) const {
    const std::size_t before = out.size();
    const std::int64_t ie_lo = cell_coord(east_lo);
    const std::int64_t ie_hi = cell_coord(east_hi);
    const std::int64_t in_lo = cell_coord(north_lo);
    const std::int64_t in_hi = cell_coord(north_hi);
    for (std::int64_t in = in_lo; in <= in_hi; ++in) {
      for (std::int64_t ie = ie_lo; ie <= ie_hi; ++ie) {
        const auto it = cells_.find(key_of(ie, in));
        if (it == cells_.end()) continue;
        out.insert(out.end(), it->second.begin(), it->second.end());
      }
    }
    std::sort(out.begin() + static_cast<std::ptrdiff_t>(before), out.end());
  }

 private:
  std::int64_t cell_coord(double metres) const {
    return static_cast<std::int64_t>(std::floor(metres / cell_m_));
  }
  static std::uint64_t key_of(std::int64_t ie, std::int64_t in) {
    return (static_cast<std::uint64_t>(ie) << 32) ^
           (static_cast<std::uint64_t>(in) & 0xFFFFFFFFULL);
  }

  double cell_m_;
  std::size_t n_points_ = 0;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> cells_;
};

}  // namespace sesame::sim
