// Struct-of-arrays fleet state.
//
// The hot per-vehicle quantities (positions, velocity commands, battery
// SoC, link quality) live in contiguous arrays owned by the World, indexed
// by vehicle add-order. Uav objects are views into these arrays: the
// guidance and integration loops in World::step stream over memory laid
// out per-field instead of chasing one heap allocation per vehicle, which
// is what lets a 1,000-vehicle fleet step faster than real time on one
// core.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sesame/geo/geodesy.hpp"

namespace sesame::sim {

/// SplitMix64 finalizer: decorrelated per-vehicle stream seed from a base
/// seed and the vehicle's add-order index. Same scheme the campaign layer
/// uses for per-run seeds, so vehicle streams are reproducible and
/// independent of fleet size: adding, removing, or crashing one vehicle
/// never perturbs another vehicle's stream.
constexpr std::uint64_t derive_stream_seed(std::uint64_t base,
                                           std::uint64_t index) noexcept {
  std::uint64_t z = base + (index + 1) * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Parallel per-vehicle arrays, indexed by add-order (World::uav(i)).
struct FleetState {
  std::vector<geo::EnuPoint> true_pos;  ///< ground truth (world ENU)
  std::vector<geo::EnuPoint> est_pos;   ///< navigation estimate (world ENU)
  std::vector<double> cmd_east_mps;     ///< commanded velocity, last plan
  std::vector<double> cmd_north_mps;
  std::vector<double> cmd_up_mps;
  /// Battery SoC mirror, refreshed by each vehicle's integrate(). Direct
  /// Battery mutations between steps (fault injection, pack swap) surface
  /// here at the next step; the Battery object stays authoritative.
  std::vector<double> soc;
  /// Last link quality sampled for the vehicle's C2 traffic by the
  /// lossy-link gate; 1 until the link model first samples the vehicle.
  std::vector<double> link_quality;

  std::size_t size() const noexcept { return true_pos.size(); }

  /// Appends one vehicle's slots (all fields); returns its index.
  std::size_t add(const geo::EnuPoint& home, double initial_soc) {
    true_pos.push_back(home);
    est_pos.push_back(home);
    cmd_east_mps.push_back(0.0);
    cmd_north_mps.push_back(0.0);
    cmd_up_mps.push_back(0.0);
    soc.push_back(initial_soc);
    link_quality.push_back(1.0);
    return size() - 1;
  }
};

}  // namespace sesame::sim
