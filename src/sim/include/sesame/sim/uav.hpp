// Kinematic UAV model.
//
// Deliberately closed-loop on the *estimated* position: the vehicle flies
// so that its position estimate reaches the waypoint, which is how GPS
// spoofing translates into real trajectory deviation (paper Fig. 6). When
// no GPS fix is available the estimator dead-reckons on the commanded
// velocity, accumulating error until an external fix (Collaborative
// Localization) corrects it.
#pragma once

#include <deque>
#include <optional>
#include <string>

#include "sesame/geo/geodesy.hpp"
#include "sesame/sim/battery.hpp"
#include "sesame/sim/gps.hpp"

namespace sesame::sim {

/// Flight modes mirroring the ConSert action lattice: Continue Mission /
/// Hold Position / Return to Base / Emergency Land (paper Fig. 1).
enum class FlightMode {
  kIdle,
  kTakeoff,
  kMission,
  kHold,
  kReturnToBase,
  kEmergencyLand,
  kLanded,
  /// Total vehicle loss (airframe down, radio dead). Terminal: the vehicle
  /// ignores every command and never publishes again.
  kCrashed,
};

std::string flight_mode_name(FlightMode m);

struct UavConfig {
  std::string name = "uav";
  double cruise_speed_mps = 8.0;
  double climb_rate_mps = 2.5;
  double descent_rate_mps = 1.5;
  double waypoint_capture_m = 2.0;
  double mission_altitude_m = 30.0;
  /// Motor losses the airframe tolerates with reconfiguration (hexarotor
  /// default: one); one more loss means loss of control.
  std::size_t tolerable_motor_failures = 1;
  /// Cruise-speed penalty per tolerated motor loss (reduced authority).
  double motor_failure_speed_penalty = 0.30;
  BatteryConfig battery;
  GpsConfig gps;
};

/// Steady wind with gusts; shared by all UAVs in a world.
struct Wind {
  double east_mps = 0.0;
  double north_mps = 0.0;
  double gust_sigma_mps = 0.0;
};

/// One simulated multirotor.
class Uav {
 public:
  /// `home` is the takeoff/landing point; the world's local frame is used
  /// for all ENU conversions.
  Uav(UavConfig config, const geo::LocalFrame& frame, const geo::GeoPoint& home,
      mathx::Rng& rng);

  const std::string& name() const noexcept { return config_.name; }
  FlightMode mode() const noexcept { return mode_; }
  const Battery& battery() const noexcept { return battery_; }
  Battery& battery() noexcept { return battery_; }
  Gps& gps() noexcept { return gps_; }
  const Gps& gps() const noexcept { return gps_; }

  /// Ground-truth position (world ENU).
  const geo::EnuPoint& true_position() const noexcept { return true_pos_; }
  geo::GeoPoint true_geo() const { return frame_->to_geo(true_pos_); }

  /// Navigation estimate the vehicle currently believes (world ENU).
  const geo::EnuPoint& estimated_position() const noexcept { return est_pos_; }
  geo::GeoPoint estimated_geo() const { return frame_->to_geo(est_pos_); }

  /// Estimation error magnitude (metres, ground plane).
  double estimation_error_m() const;

  /// Appends a mission waypoint (world ENU; up_m is the target altitude).
  void add_waypoint(const geo::EnuPoint& wp);
  void clear_waypoints();
  std::size_t waypoints_remaining() const noexcept { return waypoints_.size(); }

  /// Moves all remaining waypoints onto the back of `other`'s queue (task
  /// redistribution between fleet members); returns the number moved.
  std::size_t transfer_waypoints_to(Uav& other);

  /// Length of the remaining route: estimated position through every
  /// queued waypoint (metres; 0 when the queue is empty).
  double remaining_path_length_m() const;

  /// Caps every queued waypoint's altitude at `altitude_m` (the SINADRA
  /// descend-and-rescan adaptation lowers the remaining sweep).
  void lower_waypoints_to(double altitude_m);

  /// Injects a motor failure. Tolerated failures degrade cruise authority
  /// (reconfiguration sheds the opposite motor); exceeding the airframe's
  /// tolerance forces an immediate emergency landing.
  void fail_motor();
  std::size_t motors_failed() const noexcept { return motors_failed_; }

  /// Total loss: drops the airframe where it is and enters the terminal
  /// kCrashed mode. Remaining waypoints stay queued so the fleet layer can
  /// transfer them to survivors.
  void force_crash();

  /// Vision-sensor health (camera/IMU fault injection). A failed sensor
  /// removes the vision-based localization guarantee and blinds the
  /// person detector; navigation itself is unaffected.
  void set_vision_sensor_healthy(bool healthy) {
    vision_sensor_healthy_ = healthy;
  }
  bool vision_sensor_healthy() const noexcept { return vision_sensor_healthy_; }

  /// Cruise speed after reconfiguration penalties.
  double effective_cruise_speed() const;

  /// Mode commands (the ConSert/platform layer calls these).
  void command_takeoff();
  void command_hold();
  void command_resume_mission();
  void command_return_to_base();
  void command_emergency_land();

  /// Feeds an externally computed position fix (Collaborative
  /// Localization) into the estimator.
  void correct_estimate(const geo::GeoPoint& fix);

  /// Advances the vehicle by dt seconds under the given wind.
  void step(double dt_s, const Wind& wind);

  /// Distance flown since construction (true path length, metres).
  double odometer_m() const noexcept { return odometer_m_; }

  /// True when the vehicle is airborne.
  bool airborne() const noexcept;

 private:
  UavConfig config_;
  const geo::LocalFrame* frame_;
  mathx::Rng* rng_;
  Battery battery_;
  Gps gps_;

  geo::EnuPoint true_pos_;
  geo::EnuPoint est_pos_;
  geo::EnuPoint home_;
  // Position-hold anchor latched when an emergency landing is commanded;
  // the vehicle station-keeps over it (using its estimate) while
  // descending instead of drifting with the wind.
  geo::EnuPoint emergency_anchor_;
  std::deque<geo::EnuPoint> waypoints_;
  FlightMode mode_ = FlightMode::kIdle;

  double odometer_m_ = 0.0;
  std::size_t motors_failed_ = 0;
  bool vision_sensor_healthy_ = true;
  // Commanded velocity of the last step, for dead reckoning.
  double cmd_east_mps_ = 0.0;
  double cmd_north_mps_ = 0.0;
  double cmd_up_mps_ = 0.0;

  void navigate_towards(const geo::EnuPoint& target, double dt_s);
  void update_estimate(double dt_s);
  void apply_motion(double dt_s, const Wind& wind);
};

}  // namespace sesame::sim
