// Kinematic UAV model.
//
// Deliberately closed-loop on the *estimated* position: the vehicle flies
// so that its position estimate reaches the waypoint, which is how GPS
// spoofing translates into real trajectory deviation (paper Fig. 6). When
// no GPS fix is available the estimator dead-reckons on the commanded
// velocity, accumulating error until an external fix (Collaborative
// Localization) corrects it.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <string>

#include "sesame/geo/geodesy.hpp"
#include "sesame/sim/battery.hpp"
#include "sesame/sim/fleet_state.hpp"
#include "sesame/sim/gps.hpp"

namespace sesame::sim {

/// Flight modes mirroring the ConSert action lattice: Continue Mission /
/// Hold Position / Return to Base / Emergency Land (paper Fig. 1).
enum class FlightMode {
  kIdle,
  kTakeoff,
  kMission,
  kHold,
  kReturnToBase,
  kEmergencyLand,
  kLanded,
  /// Total vehicle loss (airframe down, radio dead). Terminal: the vehicle
  /// ignores every command and never publishes again.
  kCrashed,
};

std::string flight_mode_name(FlightMode m);

struct UavConfig {
  std::string name = "uav";
  double cruise_speed_mps = 8.0;
  double climb_rate_mps = 2.5;
  double descent_rate_mps = 1.5;
  double waypoint_capture_m = 2.0;
  double mission_altitude_m = 30.0;
  /// Motor losses the airframe tolerates with reconfiguration (hexarotor
  /// default: one); one more loss means loss of control.
  std::size_t tolerable_motor_failures = 1;
  /// Cruise-speed penalty per tolerated motor loss (reduced authority).
  double motor_failure_speed_penalty = 0.30;
  BatteryConfig battery;
  GpsConfig gps;
};

/// Steady wind with gusts; shared by all UAVs in a world.
struct Wind {
  double east_mps = 0.0;
  double north_mps = 0.0;
  double gust_sigma_mps = 0.0;
};

/// One simulated multirotor: a *view* over the fleet's struct-of-arrays
/// state. The hot per-vehicle quantities (positions, velocity commands,
/// battery SoC) live in the FleetState the World owns; this object carries
/// the cold per-vehicle state (config, waypoint queue, mode machine,
/// battery/GPS models) plus its fleet index.
class Uav {
 public:
  /// `home` is the takeoff/landing point; the world's local frame is used
  /// for all ENU conversions. `fleet` must outlive the vehicle and already
  /// contain a slot at `index` (World::add_uav arranges both).
  Uav(UavConfig config, const geo::LocalFrame& frame, const geo::GeoPoint& home,
      mathx::Rng& rng, FleetState& fleet, std::size_t index);

  const std::string& name() const noexcept { return config_.name; }
  FlightMode mode() const noexcept { return mode_; }
  const Battery& battery() const noexcept { return battery_; }
  Battery& battery() noexcept { return battery_; }
  Gps& gps() noexcept { return gps_; }
  const Gps& gps() const noexcept { return gps_; }

  /// Ground-truth position (world ENU). The reference points into the
  /// fleet's position array; it is resolved per call, so it stays valid
  /// across later add_uav reallocations as long as it is not cached.
  const geo::EnuPoint& true_position() const noexcept {
    return fleet_->true_pos[index_];
  }
  geo::GeoPoint true_geo() const { return frame_->to_geo(true_position()); }

  /// Navigation estimate the vehicle currently believes (world ENU).
  const geo::EnuPoint& estimated_position() const noexcept {
    return fleet_->est_pos[index_];
  }
  geo::GeoPoint estimated_geo() const {
    return frame_->to_geo(estimated_position());
  }

  /// This vehicle's index into the fleet's struct-of-arrays state.
  std::size_t fleet_index() const noexcept { return index_; }

  /// Estimation error magnitude (metres, ground plane).
  double estimation_error_m() const;

  /// Appends a mission waypoint (world ENU; up_m is the target altitude).
  void add_waypoint(const geo::EnuPoint& wp);
  void clear_waypoints();
  std::size_t waypoints_remaining() const noexcept { return waypoints_.size(); }

  /// Moves all remaining waypoints onto the back of `other`'s queue (task
  /// redistribution between fleet members); returns the number moved.
  std::size_t transfer_waypoints_to(Uav& other);

  /// Length of the remaining route: estimated position through every
  /// queued waypoint (metres; 0 when the queue is empty).
  double remaining_path_length_m() const;

  /// Caps every queued waypoint's altitude at `altitude_m` (the SINADRA
  /// descend-and-rescan adaptation lowers the remaining sweep).
  void lower_waypoints_to(double altitude_m);

  /// Injects a motor failure. Tolerated failures degrade cruise authority
  /// (reconfiguration sheds the opposite motor); exceeding the airframe's
  /// tolerance forces an immediate emergency landing.
  void fail_motor();
  std::size_t motors_failed() const noexcept { return motors_failed_; }

  /// Total loss: drops the airframe where it is and enters the terminal
  /// kCrashed mode. Remaining waypoints stay queued so the fleet layer can
  /// transfer them to survivors.
  void force_crash();

  /// Vision-sensor health (camera/IMU fault injection). A failed sensor
  /// removes the vision-based localization guarantee and blinds the
  /// person detector; navigation itself is unaffected.
  void set_vision_sensor_healthy(bool healthy) {
    vision_sensor_healthy_ = healthy;
  }
  bool vision_sensor_healthy() const noexcept { return vision_sensor_healthy_; }

  /// Cruise speed after reconfiguration penalties.
  double effective_cruise_speed() const;

  /// Mode commands (the ConSert/platform layer calls these).
  void command_takeoff();
  void command_hold();
  void command_resume_mission();
  void command_return_to_base();
  void command_emergency_land();

  /// Feeds an externally computed position fix (Collaborative
  /// Localization) into the estimator.
  void correct_estimate(const geo::GeoPoint& fix);

  /// Advances the vehicle by dt seconds under the given wind. Equivalent
  /// to plan(dt) followed by integrate(dt, wind).
  void step(double dt_s, const Wind& wind);

  /// Phase 1 of a step: mode logic and guidance. Computes the commanded
  /// velocity from the vehicle's *own previous-step* state and draws no
  /// randomness, so the world batches this pass over the whole fleet
  /// before any stochastic state advances — same results as the fused
  /// per-vehicle loop, but with the arithmetic-heavy guidance math
  /// streaming over the contiguous fleet arrays.
  void plan(double dt_s);

  /// Phase 2 of a step: gusts, motion integration, GPS estimate, battery.
  /// Consumes the world RNG; the world runs this pass in vehicle order so
  /// the fleet-wide draw sequence matches the pre-split simulation
  /// bit-for-bit.
  void integrate(double dt_s, const Wind& wind);

  /// Distance flown since construction (true path length, metres).
  double odometer_m() const noexcept { return odometer_m_; }

  /// True when the vehicle is airborne.
  bool airborne() const noexcept;

 private:
  UavConfig config_;
  const geo::LocalFrame* frame_;
  mathx::Rng* rng_;
  FleetState* fleet_;
  std::size_t index_;
  Battery battery_;
  Gps gps_;

  geo::EnuPoint home_;
  // Position-hold anchor latched when an emergency landing is commanded;
  // the vehicle station-keeps over it (using its estimate) while
  // descending instead of drifting with the wind.
  geo::EnuPoint emergency_anchor_;
  std::deque<geo::EnuPoint> waypoints_;
  FlightMode mode_ = FlightMode::kIdle;
  BatteryLoad planned_load_ = BatteryLoad::kIdle;  ///< plan() → integrate()

  double odometer_m_ = 0.0;
  std::size_t motors_failed_ = 0;
  bool vision_sensor_healthy_ = true;

  // Mutable views into the fleet arrays (hot state). Const-qualified on
  // purpose: they dereference the fleet pointer, and several const readers
  // (estimation error, remaining path length) share them.
  geo::EnuPoint& true_pos() const noexcept { return fleet_->true_pos[index_]; }
  geo::EnuPoint& est_pos() const noexcept { return fleet_->est_pos[index_]; }
  double& cmd_east_mps() const noexcept {
    return fleet_->cmd_east_mps[index_];
  }
  double& cmd_north_mps() const noexcept {
    return fleet_->cmd_north_mps[index_];
  }
  double& cmd_up_mps() const noexcept { return fleet_->cmd_up_mps[index_]; }

  void navigate_towards(const geo::EnuPoint& target, double dt_s);
  void update_estimate(double dt_s);
  void apply_motion(double dt_s, const Wind& wind);
};

}  // namespace sesame::sim
