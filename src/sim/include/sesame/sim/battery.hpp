// Battery model with thermal fault injection.
//
// Reproduces the Fig. 5 scenario substrate: a UAV battery discharging
// under mission load whose state of charge can drop sharply when a
// high-temperature fault is injected (80% -> 40% at the 250th second in
// the paper). SafeDrones consumes state of charge and temperature to drive
// its Markov battery-degradation model.
#pragma once

namespace sesame::sim {

/// Battery configuration. Defaults approximate a DJI Matrice 300 TB60 pack
/// flying a mapping mission: ~30 min endurance from full charge.
struct BatteryConfig {
  double capacity_wh = 274.0;       ///< nominal energy capacity
  double cruise_draw_w = 450.0;     ///< average draw in forward flight
  double hover_draw_w = 500.0;      ///< hover draw (slightly above cruise)
  double idle_draw_w = 30.0;        ///< avionics-only draw on ground
  double initial_soc = 1.0;         ///< state of charge in [0, 1]
  double ambient_temp_c = 25.0;
  /// Healthy operating temperature rise above ambient under load.
  double load_temp_rise_c = 12.0;
};

/// Battery load profile for one step.
enum class BatteryLoad { kIdle, kCruise, kHover };

/// Simulated smart battery.
class Battery {
 public:
  explicit Battery(BatteryConfig config = {});

  /// Advances the battery by dt seconds under the given load.
  void step(double dt_s, BatteryLoad load);

  /// State of charge in [0, 1].
  double soc() const noexcept { return soc_; }

  /// Cell temperature in Celsius.
  double temperature_c() const noexcept { return temperature_c_; }

  bool depleted() const noexcept { return soc_ <= 0.0; }
  bool fault_active() const noexcept { return fault_active_; }

  /// Injects the paper's thermal fault: the cell overheats and the usable
  /// charge collapses to `soc_after` (e.g. 0.40) while temperature jumps to
  /// `temp_c`. Subsequent discharge continues from the collapsed level.
  void inject_thermal_fault(double soc_after, double temp_c);

  /// Replaces the pack (return-to-base battery swap in the baseline
  /// scenario): restores full charge and clears the fault.
  void swap();

 private:
  BatteryConfig config_;
  double soc_;
  double temperature_c_;
  bool fault_active_ = false;
};

}  // namespace sesame::sim
