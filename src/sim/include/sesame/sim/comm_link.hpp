// Command-and-control RF link model.
//
// The platform's "communication-based localization" ConSert and the
// comms-loss branch of the SafeDrones fault tree both hinge on link
// health. This models a C2 link budget in the simplest useful form: full
// quality inside a nominal range, log-like falloff beyond it, zero past
// the maximum range, with optional Rayleigh-style fading jitter.
#pragma once

#include "sesame/geo/geodesy.hpp"
#include "sesame/mathx/rng.hpp"

namespace sesame::sim {

struct CommLinkConfig {
  /// Range with full link margin (quality 1.0).
  double nominal_range_m = 500.0;
  /// Range at which the link drops out entirely (quality 0.0).
  double max_range_m = 1500.0;
  /// 1-sigma multiplicative fading jitter applied per sample (0 = none).
  double fading_sigma = 0.05;
  /// Quality below which the link is considered unusable for C2.
  double usable_threshold = 0.35;
};

class CommLink {
 public:
  explicit CommLink(CommLinkConfig config = {});

  const CommLinkConfig& config() const noexcept { return config_; }

  /// Deterministic link quality in [0, 1] at the given range: 1 inside the
  /// nominal range, falling linearly in log-range to 0 at max range.
  double quality(double distance_m) const;

  /// Quality with fading jitter applied (clamped to [0, 1]).
  double sample_quality(double distance_m, mathx::Rng& rng) const;

  /// Whether a (deterministic) link at this range is usable for C2.
  bool usable(double distance_m) const {
    return quality(distance_m) >= config_.usable_threshold;
  }

  /// Range at which quality crosses the usable threshold (the fleet's
  /// operational radius for this link).
  double usable_range_m() const;

 private:
  CommLinkConfig config_;
};

}  // namespace sesame::sim
