#include "sesame/sim/wire_types.hpp"

#include "sesame/geo/geodesy.hpp"
#include "sesame/sim/world.hpp"

namespace sesame::sim {

namespace {

void encode_geo(mw::WireWriter& w, const geo::GeoPoint& p) {
  w.f64(p.lat_deg);
  w.f64(p.lon_deg);
  w.f64(p.alt_m);
}

geo::GeoPoint decode_geo(mw::WireReader& r) {
  geo::GeoPoint p;
  p.lat_deg = r.f64();
  p.lon_deg = r.f64();
  p.alt_m = r.f64();
  return p;
}

/// FlightMode travels as a u8; anything past the last enumerator poisons
/// the reader (a future peer's new mode must not alias an old one).
FlightMode decode_mode(mw::WireReader& r) {
  const std::uint8_t m = r.u8();
  if (m > static_cast<std::uint8_t>(FlightMode::kCrashed)) {
    r.fail();
    return FlightMode::kIdle;
  }
  return static_cast<FlightMode>(m);
}

}  // namespace

void register_wire_types(mw::Codec& codec) {
  codec.register_type<geo::GeoPoint>(kGeoPointTag, "geo.GeoPoint", encode_geo,
                                     decode_geo);
  codec.register_type<Telemetry>(
      kTelemetryTag, "sim.Telemetry",
      [](mw::WireWriter& w, const Telemetry& t) {
        w.str16(t.uav);
        encode_geo(w, t.reported_position);
        w.f64(t.altitude_m);
        w.f64(t.battery_soc);
        w.f64(t.battery_temp_c);
        w.u8(static_cast<std::uint8_t>(t.mode));
        w.f64(t.time_s);
        w.boolean(t.gps_fix);
      },
      [](mw::WireReader& r) {
        Telemetry t;
        t.uav = std::string(r.str16());
        t.reported_position = decode_geo(r);
        t.altitude_m = r.f64();
        t.battery_soc = r.f64();
        t.battery_temp_c = r.f64();
        t.mode = decode_mode(r);
        t.time_s = r.f64();
        t.gps_fix = r.boolean();
        return t;
      });
  codec.register_type<HealthHeartbeat>(
      kHealthHeartbeatTag, "sim.HealthHeartbeat",
      [](mw::WireWriter& w, const HealthHeartbeat& h) {
        w.str16(h.uav);
        w.f64(h.time_s);
        w.u8(static_cast<std::uint8_t>(h.mode));
        w.u32(static_cast<std::uint32_t>(h.motors_failed));
        w.boolean(h.vision_sensor_healthy);
        w.f64(h.battery_soc);
        w.boolean(h.battery_fault);
      },
      [](mw::WireReader& r) {
        HealthHeartbeat h;
        h.uav = std::string(r.str16());
        h.time_s = r.f64();
        h.mode = decode_mode(r);
        h.motors_failed = r.u32();
        h.vision_sensor_healthy = r.boolean();
        h.battery_soc = r.f64();
        h.battery_fault = r.boolean();
        return h;
      });
}

}  // namespace sesame::sim
