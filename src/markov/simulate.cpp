#include "sesame/markov/simulate.hpp"

#include <algorithm>
#include <stdexcept>

namespace sesame::markov {

Trajectory sample_trajectory(const Ctmc& chain, std::size_t start,
                             double horizon, mathx::Rng& rng) {
  if (start >= chain.num_states()) {
    throw std::out_of_range("sample_trajectory: start state");
  }
  if (horizon < 0.0) {
    throw std::invalid_argument("sample_trajectory: negative horizon");
  }
  const auto& q = chain.generator();
  Trajectory traj;
  std::size_t state = start;
  double t = 0.0;
  traj.states.push_back(state);
  traj.entry_times.push_back(0.0);

  while (t < horizon) {
    const double exit_rate = -q(state, state);
    if (exit_rate <= 0.0) {
      traj.absorbed = true;
      break;
    }
    const double dwell = rng.exponential(exit_rate);
    if (t + dwell >= horizon) break;
    t += dwell;
    // Choose the successor proportionally to its rate.
    std::vector<double> weights(chain.num_states(), 0.0);
    for (std::size_t j = 0; j < chain.num_states(); ++j) {
      if (j != state) weights[j] = q(state, j);
    }
    state = rng.categorical(weights);
    traj.states.push_back(state);
    traj.entry_times.push_back(t);
  }
  traj.end_time = traj.absorbed ? t : horizon;
  return traj;
}

std::vector<double> estimate_transient(const Ctmc& chain, std::size_t start,
                                       double t, std::size_t n,
                                       mathx::Rng& rng) {
  if (n == 0) throw std::invalid_argument("estimate_transient: n == 0");
  std::vector<double> counts(chain.num_states(), 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const Trajectory traj = sample_trajectory(chain, start, t, rng);
    counts[traj.states.back()] += 1.0;
  }
  for (double& c : counts) c /= static_cast<double>(n);
  return counts;
}

std::optional<double> sample_first_passage(
    const Ctmc& chain, std::size_t start,
    const std::vector<std::size_t>& targets, double horizon, mathx::Rng& rng) {
  if (targets.empty()) {
    throw std::invalid_argument("sample_first_passage: no targets");
  }
  const auto is_target = [&](std::size_t s) {
    return std::find(targets.begin(), targets.end(), s) != targets.end();
  };
  if (is_target(start)) return 0.0;
  const Trajectory traj = sample_trajectory(chain, start, horizon, rng);
  for (std::size_t i = 1; i < traj.states.size(); ++i) {
    if (is_target(traj.states[i])) return traj.entry_times[i];
  }
  return std::nullopt;
}

FirstPassageStats estimate_first_passage(const Ctmc& chain, std::size_t start,
                                         const std::vector<std::size_t>& targets,
                                         double horizon, std::size_t n,
                                         mathx::Rng& rng) {
  if (n == 0) throw std::invalid_argument("estimate_first_passage: n == 0");
  FirstPassageStats stats;
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto hit = sample_first_passage(chain, start, targets, horizon, rng);
    if (hit.has_value()) {
      stats.samples.push_back(*hit);
      total += *hit;
    }
  }
  stats.hit_fraction =
      static_cast<double>(stats.samples.size()) / static_cast<double>(n);
  if (!stats.samples.empty()) {
    stats.mean_time = total / static_cast<double>(stats.samples.size());
  }
  return stats;
}

}  // namespace sesame::markov
