// Continuous-time Markov chain (CTMC) engine.
//
// SafeDrones (Aslansefat et al., IMBSA 2022) models UAV subsystems —
// propulsion with motor reconfiguration, battery degradation, processor
// soft errors — as small CTMCs whose absorbing states represent subsystem
// failure. This engine provides transient analysis (state distribution at
// mission time t) via uniformization, with a matrix-exponential fallback,
// plus mean-time-to-absorption.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sesame/mathx/matrix.hpp"

namespace sesame::markov {

class Dtmc;

/// A labelled CTMC defined by its generator matrix Q (q_ij >= 0 for i != j,
/// rows sum to zero). States are indexed 0..n-1 and carry display names.
class Ctmc {
 public:
  /// Builds from a generator matrix. Throws std::invalid_argument if Q is
  /// not square, has negative off-diagonal entries, or rows do not sum to
  /// ~zero (tolerance 1e-9).
  explicit Ctmc(mathx::Matrix generator, std::vector<std::string> state_names = {});

  std::size_t num_states() const noexcept { return q_.rows(); }
  const mathx::Matrix& generator() const noexcept { return q_; }
  const std::string& state_name(std::size_t i) const { return names_.at(i); }

  /// True when state i has no outgoing transitions.
  bool is_absorbing(std::size_t i) const;
  std::vector<std::size_t> absorbing_states() const;

  /// Transient distribution pi(t) = pi0 * e^{Qt} via uniformization
  /// (Jensen's method) with adaptive truncation; falls back to expm for
  /// tiny rate matrices. pi0 must be a probability vector over the states.
  std::vector<double> transient(const std::vector<double>& pi0, double t) const;

  /// Probability of being in any of `states` at time t.
  double probability_in(const std::vector<double>& pi0, double t,
                        const std::vector<std::size_t>& states) const;

  /// Mean time to absorption from the given start state; requires at least
  /// one absorbing state reachable from every transient state, otherwise
  /// throws std::runtime_error (singular system).
  double mean_time_to_absorption(std::size_t start) const;

  /// The embedded jump chain: a DTMC whose transition probabilities are
  /// the CTMC's conditional next-state probabilities q_ij / -q_ii.
  /// Absorbing CTMC states become absorbing DTMC states (self-loop 1).
  Dtmc embedded_dtmc() const;

  /// The chain with every rate multiplied by `factor` (> 0): Q' = factor*Q.
  /// This is how temperature-accelerated models derive the adjusted chain
  /// from a base chain built once — entry-wise scaling of an existing
  /// generator instead of a full CtmcBuilder pass per evaluation. For
  /// single-exit rows the result is bit-identical to rebuilding with
  /// pre-scaled rates ((-r)*f == -(r*f) in IEEE arithmetic).
  Ctmc scaled_rates(double factor) const;

  /// Expected time spent in each state over [0, horizon] starting from
  /// pi0: the integral of the transient distribution, computed by
  /// composite-Simpson quadrature over `steps` panels. Entries sum to the
  /// horizon. Used for duty-cycle/energy analyses of degraded modes.
  std::vector<double> expected_occupancy(const std::vector<double>& pi0,
                                         double horizon,
                                         std::size_t steps = 64) const;

 private:
  mathx::Matrix q_;
  std::vector<std::string> names_;
  double max_exit_rate_ = 0.0;
};

/// Incremental builder so reliability models read declaratively:
///   CtmcBuilder b;
///   auto healthy = b.add_state("healthy");
///   auto failed  = b.add_state("failed");
///   b.add_transition(healthy, failed, lambda);
///   Ctmc chain = b.build();
class CtmcBuilder {
 public:
  /// Adds a state and returns its index.
  std::size_t add_state(std::string name);

  /// Adds a transition with the given rate (must be >= 0; zero is dropped).
  CtmcBuilder& add_transition(std::size_t from, std::size_t to, double rate);

  std::size_t num_states() const noexcept { return names_.size(); }

  /// Validates and constructs the chain.
  Ctmc build() const;

 private:
  struct Edge {
    std::size_t from;
    std::size_t to;
    double rate;
  };
  std::vector<std::string> names_;
  std::vector<Edge> edges_;
};

/// Discrete-time Markov chain with row-stochastic transition matrix P.
class Dtmc {
 public:
  explicit Dtmc(mathx::Matrix transition, std::vector<std::string> state_names = {});

  std::size_t num_states() const noexcept { return p_.rows(); }
  const mathx::Matrix& transition() const noexcept { return p_; }
  const std::string& state_name(std::size_t i) const { return names_.at(i); }

  /// Distribution after k steps.
  std::vector<double> step(const std::vector<double>& pi0, std::size_t k) const;

  /// Stationary distribution via power iteration (throws on no convergence
  /// within `max_iter`). Requires an ergodic chain for a meaningful answer.
  std::vector<double> stationary(std::size_t max_iter = 100000,
                                 double tol = 1e-12) const;

 private:
  mathx::Matrix p_;
  std::vector<std::string> names_;
};

}  // namespace sesame::markov
