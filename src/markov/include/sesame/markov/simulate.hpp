// Monte Carlo simulation of CTMCs.
//
// Complements the analytic transient solver: trajectory sampling is used
// to cross-validate uniformization results, to estimate first-passage-time
// distributions that have no closed form at the fault-tree level, and to
// drive failure-injection experiments where a sampled failure time is
// needed rather than a probability.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "sesame/markov/ctmc.hpp"
#include "sesame/mathx/rng.hpp"

namespace sesame::markov {

/// One sampled trajectory: the visited states and the time entering each.
struct Trajectory {
  std::vector<std::size_t> states;
  std::vector<double> entry_times;
  /// Total simulated time (== horizon, or the absorption time if earlier).
  double end_time = 0.0;
  bool absorbed = false;
};

/// Samples one trajectory from `start` until `horizon` or absorption.
Trajectory sample_trajectory(const Ctmc& chain, std::size_t start,
                             double horizon, mathx::Rng& rng);

/// Estimates the state distribution at time t from `n` sampled
/// trajectories — a consistency check against Ctmc::transient.
std::vector<double> estimate_transient(const Ctmc& chain, std::size_t start,
                                       double t, std::size_t n,
                                       mathx::Rng& rng);

/// Samples the first time any state in `targets` is entered, or nullopt
/// when the trajectory reaches `horizon` first.
std::optional<double> sample_first_passage(const Ctmc& chain, std::size_t start,
                                           const std::vector<std::size_t>& targets,
                                           double horizon, mathx::Rng& rng);

/// Empirical first-passage statistics over `n` samples.
struct FirstPassageStats {
  double hit_fraction = 0.0;    ///< trajectories reaching a target in time
  double mean_time = 0.0;       ///< mean hitting time among hits (0 if none)
  std::vector<double> samples;  ///< the hitting times themselves
};

FirstPassageStats estimate_first_passage(const Ctmc& chain, std::size_t start,
                                         const std::vector<std::size_t>& targets,
                                         double horizon, std::size_t n,
                                         mathx::Rng& rng);

}  // namespace sesame::markov
