#include "sesame/markov/ctmc.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sesame::markov {

namespace {

void validate_distribution(const std::vector<double>& pi, std::size_t n,
                           const char* who) {
  if (pi.size() != n) {
    throw std::invalid_argument(std::string(who) + ": distribution size mismatch");
  }
  double sum = 0.0;
  for (double p : pi) {
    if (p < -1e-12) {
      throw std::invalid_argument(std::string(who) + ": negative probability");
    }
    sum += p;
  }
  if (std::abs(sum - 1.0) > 1e-6) {
    throw std::invalid_argument(std::string(who) + ": distribution must sum to 1");
  }
}

std::vector<std::string> default_names(std::size_t n, const char* prefix) {
  std::vector<std::string> names;
  names.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    names.push_back(std::string(prefix) + std::to_string(i));
  }
  return names;
}

}  // namespace

Ctmc::Ctmc(mathx::Matrix generator, std::vector<std::string> state_names)
    : q_(std::move(generator)), names_(std::move(state_names)) {
  if (!q_.is_square()) throw std::invalid_argument("Ctmc: generator not square");
  const std::size_t n = q_.rows();
  if (names_.empty()) names_ = default_names(n, "s");
  if (names_.size() != n) {
    throw std::invalid_argument("Ctmc: state-name count mismatch");
  }
  for (std::size_t i = 0; i < n; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && q_(i, j) < 0.0) {
        throw std::invalid_argument("Ctmc: negative off-diagonal rate");
      }
      row += q_(i, j);
    }
    if (std::abs(row) > 1e-9) {
      throw std::invalid_argument("Ctmc: generator row does not sum to zero");
    }
    max_exit_rate_ = std::max(max_exit_rate_, -q_(i, i));
  }
}

bool Ctmc::is_absorbing(std::size_t i) const {
  for (std::size_t j = 0; j < q_.cols(); ++j) {
    if (i != j && q_(i, j) > 0.0) return false;
  }
  return true;
}

std::vector<std::size_t> Ctmc::absorbing_states() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < num_states(); ++i) {
    if (is_absorbing(i)) out.push_back(i);
  }
  return out;
}

std::vector<double> Ctmc::transient(const std::vector<double>& pi0,
                                    double t) const {
  validate_distribution(pi0, num_states(), "Ctmc::transient");
  if (t < 0.0) throw std::invalid_argument("Ctmc::transient: negative time");
  if (t == 0.0 || max_exit_rate_ == 0.0) return pi0;

  // Uniformization: P = I + Q/Lambda; pi(t) = sum_k Pois(k; Lambda t) pi0 P^k.
  const double lambda = max_exit_rate_ * 1.02 + 1e-12;  // slack keeps P >= 0
  const double lt = lambda * t;

  // For very large lt the Poisson series needs many terms; cap and fall back
  // to repeated squaring of the exponential for robustness.
  if (lt > 5000.0) {
    mathx::Matrix e = mathx::expm(q_ * t);
    return e.apply_transposed(pi0);
  }

  const std::size_t n = num_states();
  mathx::Matrix p = q_ * (1.0 / lambda);
  for (std::size_t i = 0; i < n; ++i) p(i, i) += 1.0;

  // Steady-Fox-Glynn-style truncation: iterate until cumulative Poisson
  // weight reaches 1 - eps.
  constexpr double eps = 1e-12;
  std::vector<double> v = pi0;        // pi0 * P^k, updated in place
  std::vector<double> acc(n, 0.0);
  // Poisson weights computed in log space to avoid overflow.
  double log_w = -lt;                 // log Pois(0)
  double cumulative = 0.0;
  for (std::size_t k = 0;; ++k) {
    const double w = std::exp(log_w);
    if (std::isfinite(w) && w > 0.0) {
      for (std::size_t i = 0; i < n; ++i) acc[i] += w * v[i];
      cumulative += w;
    }
    if (cumulative >= 1.0 - eps) break;
    if (k > 100000) break;  // defensive cap
    v = p.apply_transposed(v);
    log_w += std::log(lt) - std::log(static_cast<double>(k + 1));
  }
  // Renormalize the truncation remainder.
  if (cumulative > 0.0) {
    for (double& x : acc) x /= cumulative;
  }
  return acc;
}

double Ctmc::probability_in(const std::vector<double>& pi0, double t,
                            const std::vector<std::size_t>& states) const {
  const std::vector<double> pi = transient(pi0, t);
  double p = 0.0;
  for (std::size_t s : states) p += pi.at(s);
  return std::min(1.0, std::max(0.0, p));
}

std::vector<double> Ctmc::expected_occupancy(const std::vector<double>& pi0,
                                             double horizon,
                                             std::size_t steps) const {
  validate_distribution(pi0, num_states(), "Ctmc::expected_occupancy");
  if (horizon < 0.0) {
    throw std::invalid_argument("Ctmc::expected_occupancy: negative horizon");
  }
  if (steps == 0) {
    throw std::invalid_argument("Ctmc::expected_occupancy: zero steps");
  }
  const std::size_t n = num_states();
  std::vector<double> occupancy(n, 0.0);
  if (horizon == 0.0) return occupancy;

  // Composite Simpson over 2*steps sub-intervals.
  const std::size_t points = 2 * steps + 1;
  const double h = horizon / static_cast<double>(points - 1);
  for (std::size_t k = 0; k < points; ++k) {
    const double t = static_cast<double>(k) * h;
    const double weight = (k == 0 || k + 1 == points) ? 1.0
                          : (k % 2 == 1)              ? 4.0
                                                      : 2.0;
    const auto pi = transient(pi0, t);
    for (std::size_t i = 0; i < n; ++i) occupancy[i] += weight * pi[i];
  }
  for (double& x : occupancy) x *= h / 3.0;
  return occupancy;
}

double Ctmc::mean_time_to_absorption(std::size_t start) const {
  const std::size_t n = num_states();
  if (start >= n) throw std::out_of_range("mean_time_to_absorption: start");
  if (is_absorbing(start)) return 0.0;

  // Restrict Q to transient states T and solve Q_T * m = -1.
  std::vector<std::size_t> transient_states;
  std::vector<long> index_of(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    if (!is_absorbing(i)) {
      index_of[i] = static_cast<long>(transient_states.size());
      transient_states.push_back(i);
    }
  }
  const std::size_t m = transient_states.size();
  mathx::Matrix qt(m, m);
  for (std::size_t a = 0; a < m; ++a) {
    for (std::size_t b = 0; b < m; ++b) {
      qt(a, b) = q_(transient_states[a], transient_states[b]);
    }
  }
  std::vector<double> rhs(m, -1.0);
  std::vector<double> sol = mathx::solve_linear(std::move(qt), std::move(rhs));
  return sol[static_cast<std::size_t>(index_of[start])];
}

Ctmc Ctmc::scaled_rates(double factor) const {
  if (!(factor > 0.0)) {
    throw std::invalid_argument("Ctmc::scaled_rates: factor must be > 0");
  }
  return Ctmc(q_ * factor, names_);
}

Dtmc Ctmc::embedded_dtmc() const {
  const std::size_t n = num_states();
  mathx::Matrix p(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const double exit = -q_(i, i);
    if (exit <= 0.0) {
      p(i, i) = 1.0;  // absorbing
      continue;
    }
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) p(i, j) = q_(i, j) / exit;
    }
  }
  return Dtmc(std::move(p), names_);
}

std::size_t CtmcBuilder::add_state(std::string name) {
  names_.push_back(std::move(name));
  return names_.size() - 1;
}

CtmcBuilder& CtmcBuilder::add_transition(std::size_t from, std::size_t to,
                                         double rate) {
  if (from >= names_.size() || to >= names_.size()) {
    throw std::out_of_range("CtmcBuilder::add_transition: state index");
  }
  if (from == to) {
    throw std::invalid_argument("CtmcBuilder::add_transition: self loop");
  }
  if (rate < 0.0) {
    throw std::invalid_argument("CtmcBuilder::add_transition: negative rate");
  }
  if (rate > 0.0) edges_.push_back({from, to, rate});
  return *this;
}

Ctmc CtmcBuilder::build() const {
  const std::size_t n = names_.size();
  mathx::Matrix q(n, n);
  for (const auto& e : edges_) {
    q(e.from, e.to) += e.rate;
    q(e.from, e.from) -= e.rate;
  }
  return Ctmc(std::move(q), names_);
}

Dtmc::Dtmc(mathx::Matrix transition, std::vector<std::string> state_names)
    : p_(std::move(transition)), names_(std::move(state_names)) {
  if (!p_.is_square()) throw std::invalid_argument("Dtmc: matrix not square");
  const std::size_t n = p_.rows();
  if (names_.empty()) names_ = default_names(n, "s");
  if (names_.size() != n) throw std::invalid_argument("Dtmc: name count mismatch");
  for (std::size_t i = 0; i < n; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (p_(i, j) < 0.0) throw std::invalid_argument("Dtmc: negative entry");
      row += p_(i, j);
    }
    if (std::abs(row - 1.0) > 1e-9) {
      throw std::invalid_argument("Dtmc: row not stochastic");
    }
  }
}

std::vector<double> Dtmc::step(const std::vector<double>& pi0,
                               std::size_t k) const {
  validate_distribution(pi0, num_states(), "Dtmc::step");
  std::vector<double> v = pi0;
  for (std::size_t i = 0; i < k; ++i) v = p_.apply_transposed(v);
  return v;
}

std::vector<double> Dtmc::stationary(std::size_t max_iter, double tol) const {
  const std::size_t n = num_states();
  std::vector<double> v(n, 1.0 / static_cast<double>(n));
  for (std::size_t it = 0; it < max_iter; ++it) {
    std::vector<double> next = p_.apply_transposed(v);
    double delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) delta += std::abs(next[i] - v[i]);
    v = std::move(next);
    if (delta < tol) return v;
  }
  throw std::runtime_error("Dtmc::stationary: no convergence");
}

}  // namespace sesame::markov
