// Campaign report writers: one JSON document plus two CSV tables.
//
// The report surface is *deterministic by construction*: it contains only
// simulation-derived values, so the same (scenario, campaign seed, runs)
// produces byte-identical files no matter how many worker threads executed
// the campaign. Two result fields are therefore excluded on purpose —
// `jobs_used` / `wall_seconds`, and every metric family carrying the
// wall-clock `_seconds` unit suffix (step/delivery latency histograms);
// mission-time metrics use the `_s` suffix and stay in. Schema reference:
// docs/CAMPAIGN.md.
#pragma once

#include <iosfwd>
#include <string>

#include "sesame/campaign/campaign.hpp"

namespace sesame::campaign {

/// True when a metric family belongs in the deterministic report (i.e. it
/// does not measure wall-clock time: name does not end in "_seconds").
bool deterministic_metric(const std::string& name);

/// The deterministic subset of a metrics snapshot as the JSON array used
/// in the report's "metrics" section (wall-clock families filtered out).
/// Exposed so progress streams — the campaign service — serialize interim
/// snapshots with the exact same encoding as the final report.
std::string metrics_json(const obs::MetricsSnapshot& snapshot);

/// The full campaign report as a JSON document: campaign identity,
/// summary table, per-run outcomes, and the merged deterministic metrics.
/// 64-bit seeds are emitted as decimal strings (JSON numbers are doubles).
void write_campaign_json(const CampaignResult& result, std::ostream& out);
std::string campaign_json(const CampaignResult& result);

/// One row per run: the RunOutcome scalars.
void write_runs_csv(const CampaignResult& result, std::ostream& out);

/// One row per summary metric: count,mean,stddev,ci95,min,p50,p90,max.
void write_summary_csv(const CampaignResult& result, std::ostream& out);

/// File convenience: writes `<json_path>` (when non-empty) and
/// `<csv_prefix>_runs.csv` / `<csv_prefix>_summary.csv` (when non-empty).
/// Throws std::runtime_error when a file cannot be opened.
void export_campaign(const CampaignResult& result, const std::string& json_path,
                     const std::string& csv_prefix);

}  // namespace sesame::campaign
