// Parallel Monte Carlo campaign runner.
//
// The paper reports each scenario (Figs. 5-7) as a single seeded run; every
// headline number — detection latency, spoofing-detection rate under loss,
// battery-failure margins — is really a statistical claim that needs many
// seeded repetitions. A campaign executes N scenario runs on a worker pool
// and aggregates their outcomes into mean / 95% CI / quantile summaries,
// in the spirit of statistical model checking over the SafeDrones models.
//
// Determinism contract (tested: reports are byte-identical for any --jobs):
//  - Each worker owns a fully isolated stack per run (mw::Bus + sim::World
//    + MissionRunner + a per-run obs::MetricsRegistry); no mutable state is
//    shared between in-flight runs.
//  - Run i's seed is derive_run_seed(campaign_seed, i) — a pure function
//    of the campaign seed and the run index, never of thread assignment.
//  - Outcomes land in a pre-sized slot vector indexed by run; aggregation
//    and metric merging walk that vector in index order after the pool
//    joins, so floating-point reductions see one fixed operand order.
//  - Wall-clock observables (worker timings, `_seconds` histograms) are
//    kept out of the deterministic report surface (see report.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sesame/campaign/scenario_factory.hpp"
#include "sesame/obs/metrics.hpp"

namespace sesame::campaign {

struct CampaignConfig {
  std::size_t runs = 16;
  /// Worker threads; 0 = one per hardware thread.
  std::size_t jobs = 1;
  /// Campaign seed; run i simulates with derive_run_seed(seed, i).
  std::uint64_t seed = 1;
  /// Attach a per-run metrics registry and merge all runs' series into
  /// CampaignResult::metrics (in run order).
  bool collect_metrics = true;
};

/// Scalar outcome of one campaign run (the per-run RunnerResult reduced to
/// what campaign statistics consume; time series are dropped).
struct RunOutcome {
  std::uint64_t run_index = 0;
  std::uint64_t seed = 0;

  bool mission_complete = false;
  double mission_complete_time_s = -1.0;  ///< -1 when never completed
  double total_time_s = 0.0;
  double availability = 0.0;
  double area_coverage = 0.0;
  std::size_t persons_found = 0;
  std::size_t persons_total = 0;

  /// Lowest state of charge any UAV reached during the run (the Fig. 5
  /// battery margin).
  double min_soc = 1.0;
  /// SoC at the moment the first UAV entered ReturnToBase/EmergencyLand;
  /// -1 when no UAV ever did.
  double soc_at_rth = -1.0;

  bool attack_detected = false;
  /// Detection latency from attack start (Fig. 6); -1 when not detected
  /// or no attack was scheduled.
  double attack_detection_latency_s = -1.0;

  std::size_t waypoints_redistributed = 0;
  bool descended = false;
  std::string final_decision;

  // Recovery-subsystem outcomes (all zero / -1 when recovery is off).
  std::size_t uavs_lost = 0;
  std::size_t invariant_violations = 0;  ///< must be 0 in a healthy build
  std::size_t recovery_pings = 0;
  std::size_t recovery_demotions = 0;
  std::size_t recovery_rth_commands = 0;
  std::size_t recovery_replans = 0;
  /// Silence onset -> recovery escalation start; -1 when no loss happened.
  double time_to_detect_loss_s = -1.0;
  /// Silence onset -> first coverage re-plan; -1 when none happened.
  double time_to_replan_s = -1.0;

  // Bus / fault counters for the alert-and-fault roll-up.
  std::uint64_t faults_dropped = 0;
  std::uint64_t faults_delayed = 0;
  std::uint64_t faults_duplicated = 0;
  std::uint64_t rejected_publications = 0;
};

/// Mean / spread / quantile digest of one outcome metric across the runs
/// that contributed to it (latencies only exist for runs where the event
/// happened; `count` says how many).
struct StatSummary {
  std::string metric;
  std::size_t count = 0;  ///< contributing runs; 0 = everything below is 0
  double mean = 0.0;
  double stddev = 0.0;  ///< 0 when count < 2
  double ci95_lo = 0.0;  ///< normal-approximation 95% CI of the mean
  double ci95_hi = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double max = 0.0;
};

struct CampaignResult {
  std::uint64_t seed = 0;
  std::size_t runs = 0;
  std::vector<RunOutcome> outcomes;    ///< indexed by run
  std::vector<StatSummary> summaries;  ///< fixed metric order
  /// Per-run registries merged in run order (campaign-level histograms).
  obs::MetricsSnapshot metrics;
  /// Execution footprint — depends on load and --jobs, so report writers
  /// exclude both from the deterministic report surface.
  std::size_t jobs_used = 0;
  double wall_seconds = 0.0;
};

/// Reduces a finished run to its outcome scalars (exposed for tests and
/// for callers that drive MissionRunner themselves).
RunOutcome extract_outcome(std::uint64_t run_index, std::uint64_t seed,
                           const platform::RunnerResult& result,
                           const mw::Bus& bus,
                           bool attack_scheduled, double attack_time_s);

/// Computes the campaign summary table from outcomes (in the order given;
/// call with outcomes sorted by run index for deterministic results).
std::vector<StatSummary> summarize(const std::vector<RunOutcome>& outcomes);

/// Executes the campaign: `config.runs` seeded repetitions of the
/// factory's scenario on `config.jobs` workers. Runs are claimed from a
/// shared counter, so workers stay busy regardless of per-run variance.
/// The first exception thrown by any run is rethrown after the pool joins.
CampaignResult run_campaign(const ScenarioFactory& factory,
                            const CampaignConfig& config);

}  // namespace sesame::campaign
