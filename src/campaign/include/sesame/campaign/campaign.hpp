// Parallel Monte Carlo campaign runner.
//
// The paper reports each scenario (Figs. 5-7) as a single seeded run; every
// headline number — detection latency, spoofing-detection rate under loss,
// battery-failure margins — is really a statistical claim that needs many
// seeded repetitions. A campaign executes N scenario runs on a worker pool
// and aggregates their outcomes into mean / 95% CI / quantile summaries,
// in the spirit of statistical model checking over the SafeDrones models.
//
// Determinism contract (tested: reports are byte-identical for any --jobs):
//  - Each worker owns a fully isolated stack per run (mw::Bus + sim::World
//    + MissionRunner + a per-run obs::MetricsRegistry); no mutable state is
//    shared between in-flight runs.
//  - Run i's seed is derive_run_seed(campaign_seed, i) — a pure function
//    of the campaign seed and the run index, never of thread assignment.
//  - Outcomes land in a pre-sized slot vector indexed by run; aggregation
//    and metric merging walk that vector in index order after the pool
//    joins, so floating-point reductions see one fixed operand order.
//  - Wall-clock observables (worker timings, `_seconds` histograms) are
//    kept out of the deterministic report surface (see report.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "sesame/campaign/scenario_factory.hpp"
#include "sesame/obs/metrics.hpp"

namespace sesame::campaign {

struct RunOutcome;

struct CampaignConfig {
  std::size_t runs = 16;
  /// Worker threads; 0 = one per hardware thread.
  std::size_t jobs = 1;
  /// Campaign seed; run i simulates with derive_run_seed(seed, i).
  std::uint64_t seed = 1;
  /// Attach a per-run metrics registry and merge all runs' series into
  /// CampaignResult::metrics (in run order).
  bool collect_metrics = true;

  /// Cooperative drain: when non-null and set, workers stop claiming new
  /// runs (in-flight runs finish at run granularity — a run is never torn
  /// mid-simulation). The result then reports interrupted = true and holds
  /// only the completed runs. Owned by the caller (a signal handler flag,
  /// the service's shutdown latch); must outlive run_campaign.
  const std::atomic<bool>* stop = nullptr;

  /// Progress hook, invoked from the worker thread that finished run i with
  /// its outcome and per-run metrics snapshot (nullptr when collect_metrics
  /// is off). Callbacks race across workers — the callee synchronizes.
  /// Stamped gauge merges (run index + 1) let a callee fold snapshots in
  /// completion order and still land on the report's exact merged bits.
  std::function<void(const RunOutcome&, const obs::MetricsSnapshot*)>
      on_run_complete;
};

/// Scalar outcome of one campaign run (the per-run RunnerResult reduced to
/// what campaign statistics consume; time series are dropped).
struct RunOutcome {
  std::uint64_t run_index = 0;
  std::uint64_t seed = 0;

  bool mission_complete = false;
  double mission_complete_time_s = -1.0;  ///< -1 when never completed
  double total_time_s = 0.0;
  double availability = 0.0;
  double area_coverage = 0.0;
  std::size_t persons_found = 0;
  std::size_t persons_total = 0;

  /// Lowest state of charge any UAV reached during the run (the Fig. 5
  /// battery margin).
  double min_soc = 1.0;
  /// SoC at the moment the first UAV entered ReturnToBase/EmergencyLand;
  /// -1 when no UAV ever did.
  double soc_at_rth = -1.0;

  bool attack_detected = false;
  /// Detection latency from attack start (Fig. 6); -1 when not detected
  /// or no attack was scheduled.
  double attack_detection_latency_s = -1.0;

  std::size_t waypoints_redistributed = 0;
  bool descended = false;
  std::string final_decision;

  // Recovery-subsystem outcomes (all zero / -1 when recovery is off).
  std::size_t uavs_lost = 0;
  std::size_t invariant_violations = 0;  ///< must be 0 in a healthy build
  std::size_t recovery_pings = 0;
  std::size_t recovery_demotions = 0;
  std::size_t recovery_rth_commands = 0;
  std::size_t recovery_replans = 0;
  /// Silence onset -> recovery escalation start; -1 when no loss happened.
  double time_to_detect_loss_s = -1.0;
  /// Silence onset -> first coverage re-plan; -1 when none happened.
  double time_to_replan_s = -1.0;

  // Bus / fault counters for the alert-and-fault roll-up.
  std::uint64_t faults_dropped = 0;
  std::uint64_t faults_delayed = 0;
  std::uint64_t faults_duplicated = 0;
  std::uint64_t rejected_publications = 0;
};

/// Mean / spread / quantile digest of one outcome metric across the runs
/// that contributed to it (latencies only exist for runs where the event
/// happened; `count` says how many).
///
/// Statistics that are mathematically undefined stay NaN: every field when
/// count == 0, and stddev / ci95_* when count < 2 (a single sample has no
/// spread). Report writers render NaN as JSON `null` / an empty CSV cell —
/// a literal "nan" never reaches serialized output (RFC 8259 has no such
/// token).
struct StatSummary {
  static constexpr double kUndefined =
      std::numeric_limits<double>::quiet_NaN();

  std::string metric;
  std::size_t count = 0;  ///< contributing runs; 0 = nothing below defined
  double mean = kUndefined;
  double stddev = kUndefined;  ///< undefined (NaN) when count < 2
  double ci95_lo = kUndefined;  ///< normal-approximation 95% CI of the mean
  double ci95_hi = kUndefined;
  double min = kUndefined;
  double p50 = kUndefined;
  double p90 = kUndefined;
  double max = kUndefined;
};

struct CampaignResult {
  std::uint64_t seed = 0;
  std::size_t runs = 0;                ///< runs requested by the config
  std::vector<RunOutcome> outcomes;    ///< completed runs, by run index
  std::vector<StatSummary> summaries;  ///< fixed metric order
  /// Per-run registries merged in run order (campaign-level histograms).
  obs::MetricsSnapshot metrics;
  /// True when the config's stop flag fired before every run finished:
  /// outcomes/summaries/metrics then cover only the completed subset (an
  /// interrupted result is NOT part of the byte-identity contract and must
  /// not be exported as a report or cached).
  bool interrupted = false;
  std::size_t completed_runs = 0;  ///< == runs unless interrupted
  /// Execution footprint — depends on load and --jobs, so report writers
  /// exclude both from the deterministic report surface.
  std::size_t jobs_used = 0;
  double wall_seconds = 0.0;
};

/// Reduces a finished run to its outcome scalars (exposed for tests and
/// for callers that drive MissionRunner themselves).
RunOutcome extract_outcome(std::uint64_t run_index, std::uint64_t seed,
                           const platform::RunnerResult& result,
                           const mw::Bus& bus,
                           bool attack_scheduled, double attack_time_s);

/// Computes the campaign summary table from outcomes (in the order given;
/// call with outcomes sorted by run index for deterministic results).
std::vector<StatSummary> summarize(const std::vector<RunOutcome>& outcomes);

/// Executes the campaign: `config.runs` seeded repetitions of the
/// factory's scenario on `config.jobs` workers. Runs are claimed from a
/// shared counter, so workers stay busy regardless of per-run variance.
/// The first exception thrown by any run is rethrown after the pool joins.
CampaignResult run_campaign(const ScenarioFactory& factory,
                            const CampaignConfig& config);

}  // namespace sesame::campaign
