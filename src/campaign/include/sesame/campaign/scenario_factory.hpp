// Reusable scenario wiring for single runs and Monte Carlo campaigns.
//
// The scenario shapes the paper evaluates (nominal SAR sweep, Fig. 5
// battery fault, Fig. 6/7 spoofing attack, degraded C2 links) used to be
// inlined in scenario_cli and the examples; the factory makes them a
// library concern so the campaign runner, the CLIs and the tests all build
// runs from one place.
//
// Seed derivation (the campaign determinism contract): run i of a campaign
// seeded S simulates with `derive_run_seed(S, i)` — a splitmix64 finalizer
// over S and i. The mapping depends only on (S, i), never on which worker
// thread executes the run or in what order runs complete, which is what
// makes campaign results bit-identical regardless of `--jobs`.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sesame/platform/mission_runner.hpp"

namespace sesame::campaign {

/// Per-run seed for run `run_index` of a campaign seeded `campaign_seed`.
/// SplitMix-style: statistically independent streams for neighbouring run
/// indices, stable across platforms and thread counts.
std::uint64_t derive_run_seed(std::uint64_t campaign_seed,
                              std::uint64_t run_index);

/// Builds per-run MissionRunner configurations from a base scenario.
class ScenarioFactory {
 public:
  /// Wraps an explicit base configuration (its `seed` is overridden per
  /// run; everything else is shared by all runs).
  explicit ScenarioFactory(platform::RunnerConfig base);

  /// The default scenario shape shared by scenario_cli/campaign_cli: a
  /// 3-UAV fleet sweeping a 300 m x 300 m area at 20 m for 8 persons,
  /// 2000 s budget.
  static platform::RunnerConfig default_scenario();

  /// Named paper-scenario presets built on default_scenario():
  ///  - "nominal":        clean SAR sweep (Figs. 4/5 baseline-on arm)
  ///  - "battery_fault":  Fig. 5 thermal battery fault on uav2 at t=250 s
  ///  - "spoofing":       Fig. 6/7 GPS spoofing of uav1 from t=60 s
  ///  - "spoofing_lossy": spoofing under the distance-dependent C2 radio
  ///  - "baseline":       nominal with SESAME disabled (naive firmware)
  ///  - "chaos":          nominal + per-run randomized vehicle failures
  ///                      with the recovery subsystem active
  ///  - "fleet_1024":     1,024-vehicle sweep of a 4x4 km area under chaos
  ///                      failures + recovery (fleet-scale stress; baseline
  ///                      firmware, no per-vehicle EDDI stack)
  /// Throws std::invalid_argument for an unknown name.
  static ScenarioFactory preset(const std::string& name);
  static const std::vector<std::string>& preset_names();

  const platform::RunnerConfig& base() const noexcept { return base_; }
  platform::RunnerConfig& base() noexcept { return base_; }

  /// Chaos mode: every run gets its own seed-derived sim::FailureSchedule
  /// (drawn from `profile`) and runs with recovery enabled. The schedule
  /// seed is a pure function of (campaign seed, run index) — independent
  /// of the world seed stream — so chaos campaigns keep the byte-identical
  /// any-`--jobs` determinism contract.
  void enable_chaos(const sim::ChaosProfile& profile = {});
  bool chaos_enabled() const noexcept { return chaos_; }
  const sim::ChaosProfile& chaos_profile() const noexcept {
    return chaos_profile_;
  }

  /// The base configuration with the run's derived seed applied (and, in
  /// chaos mode, the run's generated failure schedule).
  platform::RunnerConfig config_for_run(std::uint64_t campaign_seed,
                                        std::uint64_t run_index) const;

  /// Constructs the fully wired runner for one campaign run. Each call
  /// builds an isolated stack (bus + world + mission + monitors); runners
  /// from different calls share no mutable state, so they may execute on
  /// different threads concurrently.
  std::unique_ptr<platform::MissionRunner> make_runner(
      std::uint64_t campaign_seed, std::uint64_t run_index) const;

 private:
  platform::RunnerConfig base_;
  bool chaos_ = false;
  sim::ChaosProfile chaos_profile_;
};

}  // namespace sesame::campaign
