#include "sesame/campaign/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <mutex>
#include <thread>

#include "sesame/conserts/uav_network.hpp"
#include "sesame/mathx/stats.hpp"
#include "sesame/obs/observability.hpp"

namespace sesame::campaign {

namespace {

/// One extractor row of the summary table: name, per-run value, and
/// whether the run contributes (latency-style metrics only exist for runs
/// where the event happened).
struct MetricSpec {
  const char* name;
  double (*value)(const RunOutcome&);
  bool (*contributes)(const RunOutcome&);
};

bool always(const RunOutcome&) { return true; }

const MetricSpec kMetricSpecs[] = {
    {"total_time_s", [](const RunOutcome& o) { return o.total_time_s; },
     always},
    {"mission_complete_rate",
     [](const RunOutcome& o) { return o.mission_complete ? 1.0 : 0.0; },
     always},
    {"mission_complete_time_s",
     [](const RunOutcome& o) { return o.mission_complete_time_s; },
     [](const RunOutcome& o) { return o.mission_complete; }},
    {"availability", [](const RunOutcome& o) { return o.availability; },
     always},
    {"area_coverage", [](const RunOutcome& o) { return o.area_coverage; },
     always},
    {"recall",
     [](const RunOutcome& o) {
       return o.persons_total == 0
                  ? 0.0
                  : static_cast<double>(o.persons_found) /
                        static_cast<double>(o.persons_total);
     },
     always},
    {"min_soc", [](const RunOutcome& o) { return o.min_soc; }, always},
    {"soc_at_rth", [](const RunOutcome& o) { return o.soc_at_rth; },
     [](const RunOutcome& o) { return o.soc_at_rth >= 0.0; }},
    {"attack_detection_rate",
     [](const RunOutcome& o) { return o.attack_detected ? 1.0 : 0.0; },
     always},
    {"attack_detection_latency_s",
     [](const RunOutcome& o) { return o.attack_detection_latency_s; },
     [](const RunOutcome& o) { return o.attack_detection_latency_s >= 0.0; }},
    {"waypoints_redistributed",
     [](const RunOutcome& o) {
       return static_cast<double>(o.waypoints_redistributed);
     },
     always},
    {"faults_dropped",
     [](const RunOutcome& o) { return static_cast<double>(o.faults_dropped); },
     always},
    {"faults_delayed",
     [](const RunOutcome& o) { return static_cast<double>(o.faults_delayed); },
     always},
    {"faults_duplicated",
     [](const RunOutcome& o) {
       return static_cast<double>(o.faults_duplicated);
     },
     always},
    {"rejected_publications",
     [](const RunOutcome& o) {
       return static_cast<double>(o.rejected_publications);
     },
     always},
    {"uavs_lost",
     [](const RunOutcome& o) { return static_cast<double>(o.uavs_lost); },
     always},
    {"invariant_violations",
     [](const RunOutcome& o) {
       return static_cast<double>(o.invariant_violations);
     },
     always},
    {"recovery_replans",
     [](const RunOutcome& o) {
       return static_cast<double>(o.recovery_replans);
     },
     always},
    {"time_to_detect_loss_s",
     [](const RunOutcome& o) { return o.time_to_detect_loss_s; },
     [](const RunOutcome& o) { return o.time_to_detect_loss_s >= 0.0; }},
    {"time_to_replan_s",
     [](const RunOutcome& o) { return o.time_to_replan_s; },
     [](const RunOutcome& o) { return o.time_to_replan_s >= 0.0; }},
};

}  // namespace

RunOutcome extract_outcome(std::uint64_t run_index, std::uint64_t seed,
                           const platform::RunnerResult& result,
                           const mw::Bus& bus, bool attack_scheduled,
                           double attack_time_s) {
  RunOutcome o;
  o.run_index = run_index;
  o.seed = seed;
  o.mission_complete = result.mission_complete_time_s.has_value();
  o.mission_complete_time_s = result.mission_complete_time_s.value_or(-1.0);
  o.total_time_s = result.total_time_s;
  o.availability = result.availability;
  o.area_coverage = result.area_coverage;
  o.persons_found = result.detection.persons_found;
  o.persons_total = result.detection.persons_total;
  for (const auto& [uav, series] : result.series) {
    bool rth_seen = false;
    for (const auto& rec : series) {
      o.min_soc = std::min(o.min_soc, rec.soc);
      if (!rth_seen && (rec.mode == sim::FlightMode::kReturnToBase ||
                        rec.mode == sim::FlightMode::kEmergencyLand)) {
        rth_seen = true;
        if (o.soc_at_rth < 0.0 || rec.soc < o.soc_at_rth) {
          o.soc_at_rth = rec.soc;
        }
      }
    }
  }
  o.attack_detected = result.attack_detected;
  if (attack_scheduled && result.attack_detected &&
      result.attack_detection_time_s >= 0.0) {
    o.attack_detection_latency_s =
        result.attack_detection_time_s - attack_time_s;
  }
  o.waypoints_redistributed = result.waypoints_redistributed;
  o.descended = result.descended;
  o.uavs_lost = result.uavs_lost.size();
  o.invariant_violations = result.invariant_violations.size();
  o.recovery_pings = result.recovery_pings;
  o.recovery_demotions = result.recovery_demotions;
  o.recovery_rth_commands = result.recovery_rth_commands;
  o.recovery_replans = result.recovery_replans;
  o.time_to_detect_loss_s = result.time_to_detect_loss_s;
  o.time_to_replan_s = result.time_to_replan_s;
  o.final_decision = conserts::mission_decision_name(result.final_decision);
  o.faults_dropped = bus.faults_dropped();
  o.faults_delayed = bus.faults_delayed();
  o.faults_duplicated = bus.faults_duplicated();
  o.rejected_publications = bus.rejected_publications();
  return o;
}

std::vector<StatSummary> summarize(const std::vector<RunOutcome>& outcomes) {
  std::vector<StatSummary> summaries;
  summaries.reserve(std::size(kMetricSpecs));
  for (const auto& spec : kMetricSpecs) {
    StatSummary s;
    s.metric = spec.name;
    std::vector<double> values;
    values.reserve(outcomes.size());
    for (const auto& o : outcomes) {
      if (spec.contributes(o)) values.push_back(spec.value(o));
    }
    s.count = values.size();
    if (!values.empty()) {
      s.mean = mathx::mean(values);
      s.min = mathx::min_value(values);
      s.p50 = mathx::quantile(values, 0.5);
      s.p90 = mathx::quantile(values, 0.9);
      s.max = mathx::max_value(values);
      // Spread statistics need at least two samples; below that they stay
      // NaN (rendered as null/empty by the report writers) instead of a
      // misleading zero-width interval.
      if (values.size() >= 2) {
        s.stddev = mathx::stddev(values);
        const double half = mathx::normal_quantile(0.975) * s.stddev /
                            std::sqrt(static_cast<double>(values.size()));
        s.ci95_lo = s.mean - half;
        s.ci95_hi = s.mean + half;
      }
    }
    summaries.push_back(std::move(s));
  }
  return summaries;
}

CampaignResult run_campaign(const ScenarioFactory& factory,
                            const CampaignConfig& config) {
  const auto wall0 = std::chrono::steady_clock::now();

  CampaignResult result;
  result.seed = config.seed;
  result.runs = config.runs;
  result.outcomes.resize(config.runs);

  std::size_t jobs = config.jobs != 0
                         ? config.jobs
                         : std::max(1u, std::thread::hardware_concurrency());
  jobs = std::max<std::size_t>(1, std::min(jobs, std::max<std::size_t>(
                                                     config.runs, 1)));
  result.jobs_used = jobs;

  // Per-run metric snapshots, merged in index order after the pool joins —
  // merging inside the workers would make float accumulation order (and so
  // the merged bits) depend on the run-to-worker schedule.
  std::vector<obs::MetricsSnapshot> snapshots(
      config.collect_metrics ? config.runs : 0);

  const bool attack_scheduled = factory.base().spoofing.has_value();
  const double attack_time_s =
      attack_scheduled ? factory.base().spoofing->time_s : 0.0;

  std::atomic<std::size_t> next_run{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  // One slot per run; workers write disjoint slots, the post-join scan is
  // the only cross-slot reader.
  std::vector<unsigned char> completed(config.runs, 0);

  const auto worker = [&] {
    for (;;) {
      if (config.stop && config.stop->load(std::memory_order_relaxed)) {
        return;  // drain: stop claiming, in-flight runs already finished
      }
      const std::size_t i = next_run.fetch_add(1, std::memory_order_relaxed);
      if (i >= config.runs) return;
      {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error) return;  // fail fast: stop claiming new runs
      }
      try {
        const std::uint64_t seed = derive_run_seed(config.seed, i);
        auto runner = factory.make_runner(config.seed, i);
        obs::Observability o;
        if (config.collect_metrics) runner->attach_observability(o);
        const platform::RunnerResult run_result = runner->run();
        result.outcomes[i] =
            extract_outcome(i, seed, run_result, runner->world().bus(),
                            attack_scheduled, attack_time_s);
        if (config.collect_metrics) snapshots[i] = o.metrics.snapshot();
        completed[i] = 1;
        if (config.on_run_complete) {
          config.on_run_complete(
              result.outcomes[i],
              config.collect_metrics ? &snapshots[i] : nullptr);
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };

  if (jobs == 1) {
    worker();  // in-process: keeps single-job campaigns debugger-friendly
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::size_t t = 0; t < jobs; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);

  std::size_t done = 0;
  for (const unsigned char c : completed) done += c;
  result.completed_runs = done;
  result.interrupted = done < config.runs;
  if (result.interrupted) {
    // Drain fired mid-campaign: keep only the completed runs (in index
    // order). Interrupted results never feed reports or caches, so the
    // subset's composition may legitimately depend on timing.
    std::vector<RunOutcome> kept;
    kept.reserve(done);
    for (std::size_t i = 0; i < config.runs; ++i) {
      if (completed[i]) kept.push_back(std::move(result.outcomes[i]));
    }
    result.outcomes = std::move(kept);
  }

  if (config.collect_metrics) {
    obs::MetricsRegistry merged;
    // Stamp each snapshot with its run index so gauge merges are pinned to
    // run order, not merge order — any consumer re-folding these snapshots
    // (the service streams them completion-ordered) lands on the same bits.
    for (std::size_t i = 0; i < snapshots.size(); ++i) {
      if (!completed[i]) continue;
      merged.merge(snapshots[i], i + 1);
    }
    result.metrics = merged.snapshot();
  }
  result.summaries = summarize(result.outcomes);
  result.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall0)
                            .count();
  return result;
}

}  // namespace sesame::campaign
