#include "sesame/campaign/scenario_factory.hpp"

#include <stdexcept>

namespace sesame::campaign {

std::uint64_t derive_run_seed(std::uint64_t campaign_seed,
                              std::uint64_t run_index) {
  // splitmix64: jump the campaign seed by (run_index + 1) golden-gamma
  // increments, then finalize. The +1 keeps run 0 from echoing the raw
  // campaign seed, so a campaign never shares its stream with a manual
  // single run seeded S.
  std::uint64_t z = campaign_seed + (run_index + 1) * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

ScenarioFactory::ScenarioFactory(platform::RunnerConfig base)
    : base_(std::move(base)) {}

platform::RunnerConfig ScenarioFactory::default_scenario() {
  platform::RunnerConfig config;
  config.n_uavs = 3;
  config.area = {0.0, 300.0, 0.0, 300.0};
  config.coverage.altitude_m = 20.0;
  config.n_persons = 8;
  config.max_time_s = 2000.0;
  return config;
}

ScenarioFactory ScenarioFactory::preset(const std::string& name) {
  platform::RunnerConfig config = default_scenario();
  if (name == "nominal") {
    // default shape as-is
  } else if (name == "battery_fault") {
    config.battery_fault = platform::BatteryFaultEvent{"uav2", 250.0, 0.40, 70.0};
  } else if (name == "spoofing") {
    config.spoofing = platform::SpoofingEvent{"uav1", 60.0, 2.0};
  } else if (name == "spoofing_lossy") {
    config.spoofing = platform::SpoofingEvent{"uav1", 60.0, 2.0};
    config.lossy_links = true;
  } else if (name == "baseline") {
    config.sesame_enabled = false;
  } else if (name == "chaos") {
    ScenarioFactory factory(std::move(config));
    factory.enable_chaos();
    return factory;
  } else if (name == "fleet_1024") {
    // Fleet-scale stress shape: 1,024 vehicles sweeping a 4x4 km area
    // under chaos fault injection with recovery enabled. Baseline firmware
    // (no per-vehicle EDDI stack) keeps the runtime focused on fleet
    // stepping and the failure/recovery path at scale.
    config.sesame_enabled = false;
    config.n_uavs = 1024;
    config.area = {0.0, 4000.0, 0.0, 4000.0};
    config.n_persons = 256;
    config.max_time_s = 300.0;
    ScenarioFactory factory(std::move(config));
    factory.enable_chaos();
    return factory;
  } else {
    throw std::invalid_argument("ScenarioFactory: unknown preset '" + name +
                                "'");
  }
  return ScenarioFactory(std::move(config));
}

const std::vector<std::string>& ScenarioFactory::preset_names() {
  static const std::vector<std::string> names{
      "nominal",  "battery_fault", "spoofing", "spoofing_lossy",
      "baseline", "chaos",         "fleet_1024"};
  return names;
}

void ScenarioFactory::enable_chaos(const sim::ChaosProfile& profile) {
  chaos_ = true;
  chaos_profile_ = profile;
  base_.recovery_enabled = true;
}

namespace {
// Decouples the chaos-schedule stream from the world-seed stream: without
// the salt, run i's schedule would be drawn from the same seed that drives
// the world RNG, correlating the fault draw with the flight noise.
constexpr std::uint64_t kChaosSalt = 0xC4A05C4A05C4A05CULL;
}  // namespace

platform::RunnerConfig ScenarioFactory::config_for_run(
    std::uint64_t campaign_seed, std::uint64_t run_index) const {
  platform::RunnerConfig config = base_;
  config.seed = derive_run_seed(campaign_seed, run_index);
  if (chaos_) {
    std::vector<std::string> names;
    names.reserve(config.n_uavs);
    for (std::size_t i = 0; i < config.n_uavs; ++i) {
      names.push_back("uav" + std::to_string(i + 1));  // MissionRunner naming
    }
    config.failure_schedule = sim::FailureSchedule::chaos(
        derive_run_seed(campaign_seed ^ kChaosSalt, run_index), names,
        chaos_profile_);
    config.recovery_enabled = true;
  }
  return config;
}

std::unique_ptr<platform::MissionRunner> ScenarioFactory::make_runner(
    std::uint64_t campaign_seed, std::uint64_t run_index) const {
  return std::make_unique<platform::MissionRunner>(
      config_for_run(campaign_seed, run_index));
}

}  // namespace sesame::campaign
