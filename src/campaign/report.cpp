#include "sesame/campaign/report.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "sesame/eddi/ode.hpp"

namespace sesame::campaign {

namespace {

using eddi::ode::Value;

/// CSV double format: shortest %.6g form that round-trips, else %.17g —
/// same convention as the Prometheus renderer. Undefined statistics (NaN,
/// e.g. stddev of a single run) become an empty cell, mirroring the JSON
/// writer's null.
std::string fmt_double(double v) {
  if (std::isnan(v)) return "";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  char shorter[32];
  std::snprintf(shorter, sizeof shorter, "%.6g", v);
  if (std::atof(shorter) == v) return shorter;
  return buf;
}

Value labels_to_json(const obs::Labels& labels) {
  Value::Object o;
  for (const auto& [k, v] : labels) o[k] = v;
  return Value(std::move(o));
}

Value outcome_to_json(const RunOutcome& o) {
  Value::Object run;
  run["run"] = o.run_index;
  run["seed"] = std::to_string(o.seed);  // exact: uint64 > double mantissa
  run["mission_complete"] = o.mission_complete;
  run["mission_complete_time_s"] = o.mission_complete_time_s;
  run["total_time_s"] = o.total_time_s;
  run["availability"] = o.availability;
  run["area_coverage"] = o.area_coverage;
  run["persons_found"] = o.persons_found;
  run["persons_total"] = o.persons_total;
  run["min_soc"] = o.min_soc;
  run["soc_at_rth"] = o.soc_at_rth;
  run["attack_detected"] = o.attack_detected;
  run["attack_detection_latency_s"] = o.attack_detection_latency_s;
  run["waypoints_redistributed"] = o.waypoints_redistributed;
  run["descended"] = o.descended;
  run["final_decision"] = o.final_decision;
  run["faults_dropped"] = static_cast<std::size_t>(o.faults_dropped);
  run["faults_delayed"] = static_cast<std::size_t>(o.faults_delayed);
  run["faults_duplicated"] = static_cast<std::size_t>(o.faults_duplicated);
  run["rejected_publications"] =
      static_cast<std::size_t>(o.rejected_publications);
  run["uavs_lost"] = o.uavs_lost;
  run["invariant_violations"] = o.invariant_violations;
  run["recovery_pings"] = o.recovery_pings;
  run["recovery_demotions"] = o.recovery_demotions;
  run["recovery_rth_commands"] = o.recovery_rth_commands;
  run["recovery_replans"] = o.recovery_replans;
  run["time_to_detect_loss_s"] = o.time_to_detect_loss_s;
  run["time_to_replan_s"] = o.time_to_replan_s;
  return Value(std::move(run));
}

Value summary_to_json(const StatSummary& s) {
  Value::Object row;
  row["metric"] = s.metric;
  row["count"] = s.count;
  row["mean"] = s.mean;
  row["stddev"] = s.stddev;
  row["ci95_lo"] = s.ci95_lo;
  row["ci95_hi"] = s.ci95_hi;
  row["min"] = s.min;
  row["p50"] = s.p50;
  row["p90"] = s.p90;
  row["max"] = s.max;
  return Value(std::move(row));
}

Value sample_to_json(const obs::MetricSample& s) {
  Value::Object m;
  m["name"] = s.name;
  m["labels"] = labels_to_json(s.labels);
  switch (s.kind) {
    case obs::MetricKind::kCounter:
      m["kind"] = "counter";
      m["value"] = s.value;
      break;
    case obs::MetricKind::kGauge:
      m["kind"] = "gauge";
      m["value"] = s.value;
      break;
    case obs::MetricKind::kHistogram: {
      m["kind"] = "histogram";
      m["count"] = s.observations;
      m["sum"] = s.value;
      m["min"] = s.min_observed;
      m["max"] = s.max_observed;
      Value::Array bounds;
      for (const double b : s.bucket_bounds) bounds.emplace_back(b);
      m["bucket_bounds"] = Value(std::move(bounds));
      Value::Array counts;
      for (const std::size_t c : s.bucket_counts) counts.emplace_back(c);
      m["bucket_counts"] = Value(std::move(counts));
      break;
    }
  }
  return Value(std::move(m));
}

}  // namespace

namespace {

Value metrics_to_value(const obs::MetricsSnapshot& snapshot) {
  Value::Array metrics;
  for (const auto& s : snapshot.samples) {
    if (!deterministic_metric(s.name)) continue;  // wall-clock: excluded
    metrics.push_back(sample_to_json(s));
  }
  return Value(std::move(metrics));
}

}  // namespace

std::string metrics_json(const obs::MetricsSnapshot& snapshot) {
  return metrics_to_value(snapshot).to_json();
}

bool deterministic_metric(const std::string& name) {
  static const std::string kWallClockSuffix = "_seconds";
  return name.size() < kWallClockSuffix.size() ||
         name.compare(name.size() - kWallClockSuffix.size(),
                      kWallClockSuffix.size(), kWallClockSuffix) != 0;
}

void write_campaign_json(const CampaignResult& result, std::ostream& out) {
  Value::Object doc;
  {
    Value::Object campaign;
    // /3: undefined summary statistics (stddev/ci95 of n=1 runs, every
    // stat of an empty column) serialize as null instead of a bare "nan"
    // token, and the metrics section may carry wire-security evidence
    // (sesame.security.wire_* families). /2 added the recovery and
    // invariant columns; readers of older schemas ignore unknown keys but
    // must now accept null in summary rows.
    campaign["schema"] = "sesame.campaign.report/3";
    campaign["seed"] = std::to_string(result.seed);
    campaign["runs"] = result.runs;
    doc["campaign"] = Value(std::move(campaign));
  }
  {
    Value::Array rows;
    for (const auto& s : result.summaries) rows.push_back(summary_to_json(s));
    doc["summary"] = Value(std::move(rows));
  }
  {
    Value::Array runs;
    for (const auto& o : result.outcomes) runs.push_back(outcome_to_json(o));
    doc["runs"] = Value(std::move(runs));
  }
  doc["metrics"] = metrics_to_value(result.metrics);
  out << Value(std::move(doc)).to_json() << '\n';
}

std::string campaign_json(const CampaignResult& result) {
  std::ostringstream out;
  write_campaign_json(result, out);
  return out.str();
}

void write_runs_csv(const CampaignResult& result, std::ostream& out) {
  out << "run,seed,mission_complete,mission_complete_time_s,total_time_s,"
         "availability,area_coverage,persons_found,persons_total,min_soc,"
         "soc_at_rth,attack_detected,attack_detection_latency_s,"
         "waypoints_redistributed,descended,final_decision,faults_dropped,"
         "faults_delayed,faults_duplicated,rejected_publications,"
         "uavs_lost,invariant_violations,recovery_pings,recovery_demotions,"
         "recovery_rth_commands,recovery_replans,time_to_detect_loss_s,"
         "time_to_replan_s\n";
  for (const auto& o : result.outcomes) {
    out << o.run_index << ',' << o.seed << ',' << (o.mission_complete ? 1 : 0)
        << ',' << fmt_double(o.mission_complete_time_s) << ','
        << fmt_double(o.total_time_s) << ',' << fmt_double(o.availability)
        << ',' << fmt_double(o.area_coverage) << ',' << o.persons_found << ','
        << o.persons_total << ',' << fmt_double(o.min_soc) << ','
        << fmt_double(o.soc_at_rth) << ',' << (o.attack_detected ? 1 : 0)
        << ',' << fmt_double(o.attack_detection_latency_s) << ','
        << o.waypoints_redistributed << ',' << (o.descended ? 1 : 0) << ','
        << o.final_decision << ',' << o.faults_dropped << ','
        << o.faults_delayed << ',' << o.faults_duplicated << ','
        << o.rejected_publications << ',' << o.uavs_lost << ','
        << o.invariant_violations << ',' << o.recovery_pings << ','
        << o.recovery_demotions << ',' << o.recovery_rth_commands << ','
        << o.recovery_replans << ',' << fmt_double(o.time_to_detect_loss_s)
        << ',' << fmt_double(o.time_to_replan_s) << '\n';
  }
}

void write_summary_csv(const CampaignResult& result, std::ostream& out) {
  out << "metric,count,mean,stddev,ci95_lo,ci95_hi,min,p50,p90,max\n";
  for (const auto& s : result.summaries) {
    out << s.metric << ',' << s.count << ',' << fmt_double(s.mean) << ','
        << fmt_double(s.stddev) << ',' << fmt_double(s.ci95_lo) << ','
        << fmt_double(s.ci95_hi) << ',' << fmt_double(s.min) << ','
        << fmt_double(s.p50) << ',' << fmt_double(s.p90) << ','
        << fmt_double(s.max) << '\n';
  }
}

void export_campaign(const CampaignResult& result, const std::string& json_path,
                     const std::string& csv_prefix) {
  // Atomic publication: each report is written to a `.tmp` sibling and
  // renamed into place, so a crash or signal mid-write never leaves a
  // truncated file under the requested name (the drain contract —
  // docs/SERVICE.md — relies on this).
  const auto write_atomic = [](const std::string& path, const auto& writer) {
    const std::string tmp = path + ".tmp";
    {
      std::ofstream f(tmp);
      if (!f) {
        throw std::runtime_error("campaign report: cannot open " + tmp);
      }
      writer(f);
      f.flush();
      if (!f) {
        f.close();
        std::remove(tmp.c_str());
        throw std::runtime_error("campaign report: write failed: " + tmp);
      }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::remove(tmp.c_str());
      throw std::runtime_error("campaign report: cannot rename " + tmp +
                               " -> " + path);
    }
  };
  if (!json_path.empty()) {
    write_atomic(json_path, [&](std::ostream& f) {
      write_campaign_json(result, f);
    });
  }
  if (!csv_prefix.empty()) {
    write_atomic(csv_prefix + "_runs.csv", [&](std::ostream& f) {
      write_runs_csv(result, f);
    });
    write_atomic(csv_prefix + "_summary.csv", [&](std::ostream& f) {
      write_summary_csv(result, f);
    });
  }
}

}  // namespace sesame::campaign
