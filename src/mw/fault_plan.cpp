#include "sesame/mw/fault_plan.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace sesame::mw {

namespace {

[[noreturn]] void bad_plan(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("parse_fault_plan: line " +
                           std::to_string(line_no) + ": " + what);
}

double parse_probability(const std::string& text, std::size_t line_no,
                         const std::string& key) {
  std::size_t consumed = 0;
  double p = 0.0;
  try {
    p = std::stod(text, &consumed);
  } catch (const std::exception&) {
    bad_plan(line_no, key + " needs a number, got '" + text + "'");
  }
  if (consumed != text.size()) {
    bad_plan(line_no, key + " needs a number, got '" + text + "'");
  }
  return p;
}

}  // namespace

bool FaultRule::matches(const MessageHeader& header) const {
  if (header.time_s < start_time_s || header.time_s >= stop_time_s) {
    return false;
  }
  if (!topic_prefix.empty() && !header.topic.starts_with(topic_prefix)) {
    return false;
  }
  if (!topic_suffix.empty() && !header.topic.ends_with(topic_suffix)) {
    return false;
  }
  if (!source.empty() && header.source != source) return false;
  return true;
}

void FaultRule::validate() const {
  const auto probability = [](double p) { return p >= 0.0 && p <= 1.0; };
  if (!probability(drop_probability) || !probability(delay_probability) ||
      !probability(duplicate_probability)) {
    throw std::invalid_argument(
        "FaultRule: probabilities must lie in [0, 1]");
  }
  if (delay_steps == 0) {
    throw std::invalid_argument("FaultRule: delay_steps must be >= 1");
  }
  if (!(start_time_s < stop_time_s)) {
    throw std::invalid_argument("FaultRule: empty active time window");
  }
}

FaultPlan FaultPlan::telemetry_stress() {
  FaultPlan plan;
  plan.seed = 1337;
  FaultRule rule;
  rule.topic_suffix = "/telemetry";
  rule.drop_probability = 0.10;
  rule.delay_probability = 0.20;
  rule.delay_steps = 2;
  rule.duplicate_probability = 0.10;
  rule.reorder = true;
  plan.rules.push_back(rule);
  return plan;
}

FaultPlan parse_fault_plan(const std::string& text) {
  FaultPlan plan;
  std::istringstream lines(text);
  std::string line;
  std::size_t line_no = 0;
  bool saw_directive = false;
  while (std::getline(lines, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream tokens(line);
    std::string head;
    if (!(tokens >> head)) continue;  // blank / comment-only line
    if (head == "seed") {
      unsigned long long seed = 0;
      if (!(tokens >> seed)) bad_plan(line_no, "seed needs an integer");
      plan.seed = static_cast<std::uint64_t>(seed);
      saw_directive = true;
    } else if (head == "rule") {
      FaultRule rule;
      std::string token;
      while (tokens >> token) {
        const auto eq = token.find('=');
        const std::string key = token.substr(0, eq);
        const std::string value =
            eq == std::string::npos ? std::string() : token.substr(eq + 1);
        if (key == "reorder" && eq == std::string::npos) {
          rule.reorder = true;
        } else if (eq == std::string::npos || value.empty()) {
          bad_plan(line_no, "expected key=value, got '" + token + "'");
        } else if (key == "topic") {
          rule.topic_prefix = value;
        } else if (key == "suffix") {
          rule.topic_suffix = value;
        } else if (key == "source") {
          rule.source = value;
        } else if (key == "drop") {
          rule.drop_probability = parse_probability(value, line_no, key);
        } else if (key == "dup") {
          rule.duplicate_probability = parse_probability(value, line_no, key);
        } else if (key == "from") {
          rule.start_time_s = parse_probability(value, line_no, key);
        } else if (key == "until") {
          rule.stop_time_s = parse_probability(value, line_no, key);
        } else if (key == "delay") {
          // delay=P or delay=P:N (probability : hold steps, default 1).
          const auto colon = value.find(':');
          rule.delay_probability = parse_probability(
              value.substr(0, colon), line_no, key);
          if (colon != std::string::npos) {
            const std::string steps = value.substr(colon + 1);
            try {
              rule.delay_steps = static_cast<std::size_t>(std::stoul(steps));
            } catch (const std::exception&) {
              bad_plan(line_no, "delay steps must be an integer, got '" +
                                    steps + "'");
            }
          }
        } else {
          bad_plan(line_no, "unknown rule key '" + key + "'");
        }
      }
      rule.validate();
      plan.rules.push_back(std::move(rule));
      saw_directive = true;
    } else {
      bad_plan(line_no, "expected 'seed' or 'rule', got '" + head + "'");
    }
  }
  if (!saw_directive) {
    throw std::runtime_error("parse_fault_plan: no seed or rule directives");
  }
  return plan;
}

FaultPlan load_fault_plan(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("load_fault_plan: cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_fault_plan(buffer.str());
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), rng_(plan_.seed) {
  for (const auto& rule : plan_.rules) rule.validate();
}

FaultDecision FaultInjector::decide(const MessageHeader& header) {
  FaultDecision d;
  for (const auto& rule : plan_.rules) {
    if (!rule.matches(header)) continue;
    // First matching rule wins. Draw order is fixed (drop, duplicate,
    // delay) so the realized fault sequence is a pure function of the
    // plan, the seed, and the matched-publication order.
    if (rule.drop_probability > 0.0 && rng_.bernoulli(rule.drop_probability)) {
      d.drop = true;
      return d;
    }
    if (rule.duplicate_probability > 0.0 &&
        rng_.bernoulli(rule.duplicate_probability)) {
      d.duplicates = 1;
    }
    if (rule.delay_probability > 0.0 &&
        rng_.bernoulli(rule.delay_probability)) {
      d.delay_steps = rule.delay_steps;
      d.reorder = rule.reorder;
    }
    return d;
  }
  return d;
}

}  // namespace sesame::mw
