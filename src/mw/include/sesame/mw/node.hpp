// Node handle: the ROS-style participant facade over the bus.
//
// Components publish under a fixed node identity; threading the source
// string through every publish call is error-prone (and a mistyped source
// silently defeats the IDS's authorization rules). A NodeHandle bakes the
// identity in, mirroring how ROS nodes carry their name.
#pragma once

#include <string>
#include <utility>

#include "sesame/mw/bus.hpp"

namespace sesame::mw {

class NodeHandle {
 public:
  /// `name` is the node's bus identity (the MessageHeader::source of every
  /// publication). Throws std::invalid_argument on an empty name.
  NodeHandle(Bus& bus, std::string name);

  const std::string& name() const noexcept { return name_; }
  Bus& bus() noexcept { return *bus_; }

  template <typename T>
  void publish(const std::string& topic, const T& payload, double time_s) {
    bus_->publish(topic, payload, name_, time_s);
  }

  template <typename T>
  [[nodiscard]] Subscription subscribe(
      const std::string& topic,
      std::function<void(const MessageHeader&, const T&)> handler) {
    return bus_->subscribe<T>(topic, std::move(handler));
  }

 private:
  Bus* bus_;
  std::string name_;
};

}  // namespace sesame::mw
