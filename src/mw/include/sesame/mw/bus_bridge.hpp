// Federates two Bus instances across a byte stream (docs/PROTOCOL.md §6).
//
// A BusBridge is one endpoint: it taps its local bus, encodes every
// forwardable publication through `mw::Codec`, ships it through
// `mw::Framing`, and republishes whatever arrives from the peer onto the
// local bus. Two bridges + a byte link = one federated bus: a publish on
// side A delivers on side B with the same topic, source, payload and
// publish time (sequence numbers are bus-local and reassigned).
//
// The bridge is byte-oriented and transport-agnostic, like Framing: the
// owner moves `take_outbound()` to a socket/pipe and `feed_inbound()`s
// whatever arrives (examples/bus_bridge_demo.cpp runs it over a
// socketpair between two processes; tests pump in memory).
//
// Delivery-policy integration: a remote message enters the local bus
// through the ordinary `Bus::publish` pipeline — journal, taps (the IDS
// sees federated traffic), ACL, type validation, fault-injection
// policies, metrics. A fault plan on the receiving bus drops/delays
// bridged messages exactly like local ones. Outbound capture is
// tap-level, i.e. *pre*-policy on the sending side: the bridge behaves
// like a network interface, not a subscriber — what the local bus's fault
// plan drops for local subscribers still reaches the wire, and the
// receiving side's policies rule there. (It also means ACL-rejected
// publications cross the bridge and are re-judged by the remote ACL —
// the wire is part of the attack surface, which is the point.)
//
// Loop prevention is split-horizon by source: every source name that
// arrives from the peer is remembered, and local publications from a
// remembered source are never forwarded back. This handles nested
// re-publications correctly (an IDS alert raised *in response to* a
// bridged message has a local source and is forwarded) but requires
// source names to be unique across the federation — don't run a "gcs"
// publisher on both sides of one link.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "sesame/mw/bus.hpp"
#include "sesame/mw/codec.hpp"
#include "sesame/mw/framing.hpp"
#include "sesame/obs/metrics.hpp"

namespace sesame::mw {

struct BridgeConfig {
  /// Label for this endpoint's metric series ({"link": name}).
  std::string name = "bridge";
  /// Forward only topics starting with one of these prefixes; empty
  /// forwards everything.
  std::vector<std::string> forward_prefixes;
  FramingConfig framing;
};

/// Bridge-level counters (transport-level ones live in LinkCounters).
struct BridgeCounters {
  std::uint64_t forwarded = 0;          ///< local publications shipped
  std::uint64_t delivered = 0;          ///< remote messages republished
  std::uint64_t skipped_remote_origin = 0;  ///< split-horizon suppressions
  std::uint64_t skipped_filtered = 0;   ///< outside forward_prefixes
  std::uint64_t skipped_unknown_type = 0;  ///< no codec schema (either side)
  std::uint64_t decode_errors = 0;      ///< structurally bad message bytes
  std::uint64_t malformed_payloads = 0; ///< payload rejected by its schema
  std::uint64_t version_rejects = 0;    ///< message schema version mismatch
};

class BusBridge {
 public:
  /// `bus` and `codec` are borrowed and must outlive the bridge. Register
  /// every federated payload type on `codec` before traffic flows —
  /// unregistered types are skipped and counted, never partially sent.
  BusBridge(Bus& bus, const Codec& codec, BridgeConfig config = {});

  /// Begins the link handshake (queues the Init frame). Idempotent.
  void start() { framing_.start(); }
  bool established() const noexcept { return framing_.established(); }

  /// Wire bytes waiting to be written to the transport.
  std::vector<std::uint8_t> take_outbound();
  bool has_outbound() const noexcept { return framing_.has_outbound(); }

  /// Consumes bytes read from the transport, republishing every decoded
  /// message on the local bus. Never throws on wire input.
  void feed_inbound(std::span<const std::uint8_t> bytes);

  const BridgeCounters& bridge_counters() const noexcept { return counters_; }
  const LinkCounters& link_counters() const noexcept {
    return framing_.counters();
  }
  std::uint16_t negotiated_version() const noexcept {
    return framing_.negotiated_version();
  }

  /// Attaches (nullptr: detaches) a metrics registry. The bridge mirrors
  /// its counters into `sesame.wire.*` series labelled {link: config.name}
  /// — frames/bytes tx+rx, messages forwarded/delivered, decode/crc
  /// errors, replays, resyncs (catalogue in docs/OBSERVABILITY.md).
  void set_metrics(obs::MetricsRegistry* registry);

  /// In-memory federation pump for tests and single-process setups:
  /// exchanges outbound bytes between the two endpoints until both are
  /// quiet (bounded — throws std::logic_error if the link chatters
  /// forever, which would be a protocol bug).
  static void pump(BusBridge& a, BusBridge& b);

 private:
  void on_local_publish(const MessageHeader& h, const std::any& payload,
                        std::type_index type);
  bool topic_forwardable(std::string_view topic) const;
  void sync_metrics();

  Bus& bus_;
  const Codec& codec_;
  BridgeConfig config_;
  Framing framing_;
  BridgeCounters counters_;
  /// SourceId indexes (on the local bus) first seen on inbound messages.
  std::unordered_set<std::uint32_t> remote_sources_;
  std::vector<std::uint8_t> encode_buf_;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::vector<std::pair<obs::Counter*, const std::uint64_t*>> mirrors_;
  Subscription tap_;  ///< last member: released before the rest tears down
};

}  // namespace sesame::mw
