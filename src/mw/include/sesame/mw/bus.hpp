// In-process typed publish/subscribe middleware.
//
// Stands in for ROS in the paper's architecture: UAV nodes, the ground
// control station, EDDIs and the IDS all communicate over named topics.
// Deliberately reproduces the property the paper exploits in its security
// scenario — *any* participant can publish to any topic (no authentication),
// so a spoofing node can inject falsified telemetry/waypoints. The IDS taps
// the bus through `add_tap` to inspect traffic.
#pragma once

#include <any>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <typeindex>
#include <vector>

#include "sesame/obs/metrics.hpp"

namespace sesame::mw {

/// Metadata attached to every published message.
struct MessageHeader {
  std::uint64_t seq = 0;       ///< bus-wide sequence number
  double time_s = 0.0;         ///< publisher's notion of mission time
  std::string source;          ///< publishing node name (unauthenticated!)
  std::string topic;
};

/// Journal entry kept for diagnostics and the IDS.
struct JournalEntry {
  MessageHeader header;
  std::string type_name;  ///< mangled C++ type of the payload
};

/// Token returned by subscribe/tap registration; unsubscribes on release.
class Subscription {
 public:
  Subscription() = default;
  explicit Subscription(std::function<void()> unsubscribe)
      : unsubscribe_(std::move(unsubscribe)) {}
  Subscription(Subscription&&) = default;
  Subscription& operator=(Subscription&& o) {
    reset();
    unsubscribe_ = std::move(o.unsubscribe_);
    o.unsubscribe_ = nullptr;
    return *this;
  }
  Subscription(const Subscription&) = delete;
  Subscription& operator=(const Subscription&) = delete;
  ~Subscription() { reset(); }

  void reset() {
    if (unsubscribe_) {
      unsubscribe_();
      unsubscribe_ = nullptr;
    }
  }
  bool active() const noexcept { return static_cast<bool>(unsubscribe_); }

 private:
  std::function<void()> unsubscribe_;
};

/// The message bus. Single-threaded by design (the simulator steps the
/// world deterministically); delivery is synchronous and in subscription
/// order, which keeps every experiment reproducible.
class Bus {
 public:
  /// Publishes a payload on `topic`. Delivery is immediate. The payload
  /// type must match subscribers' expected type exactly; a mismatch throws
  /// std::runtime_error (it is a programming error, not an attack vector).
  ///
  /// When the topic carries a publisher restriction (restrict_publisher —
  /// the SROS2-style authentication mitigation), publications from any
  /// other source are dropped before reaching subscribers; taps (IDS)
  /// still observe the attempt, as a network IDS would.
  template <typename T>
  void publish(const std::string& topic, const T& payload,
               const std::string& source, double time_s) {
    MessageHeader h;
    h.seq = next_seq_++;
    h.time_s = time_s;
    h.source = source;
    h.topic = topic;
    // Instrumentation rides the same point as the journal: both observe
    // every publication attempt, accepted or not.
    TopicInstruments* ti = nullptr;
    if (metrics_ != nullptr) {
      ti = &instruments(topic);
      ti->publish->inc();
    }
    if (journal_enabled_) {
      journal_.push_back({h, typeid(T).name()});
    }
    // Taps see everything, before subscribers.
    for (const auto& [id, tap] : taps_) {
      (void)id;
      tap(h, std::any(std::cref(payload)), std::type_index(typeid(T)));
    }
    if (const auto acl = acl_.find(topic);
        acl != acl_.end() && acl->second != source) {
      ++rejected_publications_;
      if (rejected_counter_ != nullptr) rejected_counter_->inc();
      return;  // authenticated transport: unauthorized publication dropped
    }
    const auto it = subscribers_.find(topic);
    if (it == subscribers_.end()) return;
    // Copy the handler list: handlers may (un)subscribe re-entrantly.
    auto handlers = it->second;
    const auto t0 = ti != nullptr ? std::chrono::steady_clock::now()
                                  : std::chrono::steady_clock::time_point{};
    for (const auto& s : handlers) {
      if (s.type != std::type_index(typeid(T))) {
        throw std::runtime_error("Bus: type mismatch on topic '" + topic +
                                 "': published " + typeid(T).name() +
                                 " but a subscriber expects a different type");
      }
      s.handler(h, &payload);
    }
    if (ti != nullptr) {
      ti->deliver->inc(static_cast<double>(handlers.size()));
      ti->latency->observe(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count());
    }
  }

  /// Subscribes a handler to `topic`. Returns a token whose destruction
  /// unsubscribes.
  template <typename T>
  [[nodiscard]] Subscription subscribe(
      const std::string& topic,
      std::function<void(const MessageHeader&, const T&)> handler) {
    const std::uint64_t id = next_sub_id_++;
    Entry e;
    e.id = id;
    e.type = std::type_index(typeid(T));
    e.handler = [handler = std::move(handler)](const MessageHeader& h,
                                               const void* payload) {
      handler(h, *static_cast<const T*>(payload));
    };
    subscribers_[topic].push_back(std::move(e));
    return Subscription([this, topic, id] {
      auto& list = subscribers_[topic];
      for (auto it = list.begin(); it != list.end(); ++it) {
        if (it->id == id) {
          list.erase(it);
          break;
        }
      }
    });
  }

  /// Tap invoked for every message on every topic (IDS / diagnostics).
  /// The std::any carries a std::reference_wrapper<const T>.
  using TapFn = std::function<void(const MessageHeader&, const std::any&,
                                   std::type_index)>;
  [[nodiscard]] Subscription add_tap(TapFn tap);

  /// Number of registered subscribers on a topic.
  std::size_t subscriber_count(const std::string& topic) const;

  /// Message journal (headers only); enabled by default.
  void enable_journal(bool on) { journal_enabled_ = on; }
  const std::vector<JournalEntry>& journal() const noexcept { return journal_; }
  void clear_journal() { journal_.clear(); }

  std::uint64_t messages_published() const noexcept { return next_seq_; }

  /// Enables authenticated publishing on `topic`: only `source` may
  /// publish there; other publications are dropped (and counted). This is
  /// the paper's mitigation for the ROS spoofing vulnerability — without
  /// it the bus accepts traffic from any node.
  void restrict_publisher(const std::string& topic, const std::string& source);

  /// Publications dropped by publisher restrictions so far.
  std::uint64_t rejected_publications() const noexcept {
    return rejected_publications_;
  }

  /// Attaches (nullptr: detaches) a metrics registry. While attached the
  /// bus maintains, per topic: `sesame.mw.publish_total` (every publication
  /// attempt, like the journal), `sesame.mw.deliver_total` (handler
  /// invocations) and `sesame.mw.delivery_latency_seconds` (wall time to
  /// fan one message out to a topic's subscribers); plus the bus-wide
  /// `sesame.mw.rejected_total`. The registry must outlive the attachment.
  void set_metrics(obs::MetricsRegistry* registry);

 private:
  struct Entry {
    std::uint64_t id = 0;
    std::type_index type = std::type_index(typeid(void));
    std::function<void(const MessageHeader&, const void*)> handler;
  };

  /// Per-topic instruments, looked up once per topic then cached.
  struct TopicInstruments {
    obs::Counter* publish = nullptr;
    obs::Counter* deliver = nullptr;
    obs::Histogram* latency = nullptr;
  };
  TopicInstruments& instruments(const std::string& topic);

  std::map<std::string, std::vector<Entry>> subscribers_;
  std::map<std::string, std::string> acl_;  // topic -> sole allowed source
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* rejected_counter_ = nullptr;
  std::map<std::string, TopicInstruments> instruments_;
  std::uint64_t rejected_publications_ = 0;
  std::map<std::uint64_t, TapFn> taps_;
  std::vector<JournalEntry> journal_;
  bool journal_enabled_ = true;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_sub_id_ = 0;
};

}  // namespace sesame::mw
