// In-process typed publish/subscribe middleware.
//
// Stands in for ROS in the paper's architecture: UAV nodes, the ground
// control station, EDDIs and the IDS all communicate over named topics.
// Deliberately reproduces the property the paper exploits in its security
// scenario — *any* participant can publish to any topic (no authentication),
// so a spoofing node can inject falsified telemetry/waypoints. The IDS taps
// the bus through `add_tap` to inspect traffic.
//
// Topic interning (the hot-path design; see docs/PERFORMANCE.md):
//  - Every topic and source name is interned once into a handle table; a
//    `TopicId` / `SourceId` indexes flat per-topic state (subscribers, the
//    publisher ACL, cached metric instruments), so the steady-state publish
//    path does no string hashing, no map lookups and no allocation.
//  - The string-keyed `publish(topic, payload, source, time)` overload is a
//    compatibility shim that interns on first use; hot callers resolve
//    their ids once (`intern_topic` / `intern_source`) and publish through
//    the id overload.
//  - `MessageHeader` carries the interned ids plus string views into the
//    bus-owned name table (valid for the bus's lifetime) — no per-message
//    string copies.
//  - The journal is a capped ring buffer (default generous); once warm it
//    overwrites its oldest slot instead of growing, and counts what it
//    evicted (`journal_dropped`).
//
// Delivery contract (single-threaded by design — the simulator steps the
// world deterministically, so fan-out is synchronous and in subscription
// order):
//  - Each publication runs the pipeline journal → taps → ACL → type
//    validation → fault policies → delivery. Taps and the journal observe
//    every attempt; the ACL drops unauthorized publications before
//    subscribers; subscriber payload types are validated *before* any
//    handler runs; registered `DeliveryPolicy` objects may then drop,
//    delay, duplicate or reorder the message (see fault_plan.hpp).
//  - Delivery order is subscription order, and unsubscribing never
//    reorders the remaining subscribers. (Removal is ordered rather than
//    swap-and-pop precisely to keep this guarantee — campaign reports are
//    bit-identical across optimisations only because fan-out order never
//    changes.)
//  - Re-entrancy: registries are iterated under a generation count instead
//    of being copied, so handlers may freely (un)subscribe, add taps, or
//    release their own Subscription mid-delivery. A handler or tap removed
//    during a fan-out still observes the in-flight message; one added
//    during a fan-out first observes the next message. Delivery policies
//    must not mutate the bus from inside decide().
//  - Delayed messages sit in a queue drained by `drain_delayed()` (called
//    once per `sim::World::step`); they are delivered to the subscribers
//    registered *at drain time*, with their original header.
#pragma once

#include <any>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <typeindex>
#include <vector>

#include "sesame/obs/metrics.hpp"

namespace sesame::mw {

class Bus;

/// Opaque handle to an interned name (topic or source). Obtained from
/// Bus::intern_topic / Bus::intern_source; valid for that bus's lifetime.
/// A default-constructed id is invalid and belongs to no bus.
template <typename Tag>
class InternedId {
 public:
  constexpr InternedId() = default;

  constexpr bool valid() const noexcept { return index_ != kInvalid; }
  constexpr std::uint32_t index() const noexcept { return index_; }

  friend constexpr bool operator==(InternedId a, InternedId b) noexcept {
    return a.index_ == b.index_;
  }
  friend constexpr bool operator!=(InternedId a, InternedId b) noexcept {
    return a.index_ != b.index_;
  }

 private:
  friend class Bus;
  constexpr explicit InternedId(std::uint32_t index) noexcept
      : index_(index) {}
  static constexpr std::uint32_t kInvalid = 0xFFFFFFFFu;

  std::uint32_t index_ = kInvalid;
};

using TopicId = InternedId<struct TopicIdTag>;
using SourceId = InternedId<struct SourceIdTag>;

/// Metadata attached to every published message. The string views point
/// into the publishing bus's intern table: they stay valid for the bus's
/// lifetime, and copying a header never allocates.
struct MessageHeader {
  std::uint64_t seq = 0;        ///< bus-wide sequence number
  double time_s = 0.0;          ///< publisher's notion of mission time
  std::string_view source;      ///< publishing node name (unauthenticated!)
  std::string_view topic;
  TopicId topic_id;             ///< interned handle of `topic`
  SourceId source_id;           ///< interned handle of `source`
};

/// Journal entry kept for diagnostics and the IDS. `type_name` views the
/// payload's typeid name (static storage — always valid).
struct JournalEntry {
  MessageHeader header;
  std::string_view type_name;  ///< mangled C++ type of the payload
};

/// What a delivery policy decided for one accepted publication.
struct FaultDecision {
  bool drop = false;          ///< lose the message in flight
  std::size_t delay_steps = 0;  ///< 0 = deliver now; N = after N drains
  std::size_t duplicates = 0;   ///< extra copies delivered
  bool reorder = false;  ///< delayed copies jump ahead of earlier ones
};

/// Pluggable per-publication delivery fault model. Implementations must be
/// deterministic given the publication sequence (any randomness must come
/// from an owned seeded RNG) and must not mutate the bus from decide().
class DeliveryPolicy {
 public:
  virtual ~DeliveryPolicy() = default;
  virtual FaultDecision decide(const MessageHeader& header) = 0;
};

/// Token returned by subscribe/tap/policy registration; unsubscribes on
/// release. Holds the owning bus and the interned registration identity —
/// releasing one is a direct index into the bus's tables, no allocation
/// and no string lookup.
class Subscription {
 public:
  Subscription() = default;
  Subscription(Subscription&& o) noexcept
      : bus_(o.bus_), kind_(o.kind_), topic_(o.topic_), id_(o.id_) {
    o.bus_ = nullptr;
  }
  Subscription& operator=(Subscription&& o) noexcept {
    if (this != &o) {  // self-move must not release the live registration
      reset();
      bus_ = o.bus_;
      kind_ = o.kind_;
      topic_ = o.topic_;
      id_ = o.id_;
      o.bus_ = nullptr;
    }
    return *this;
  }
  Subscription(const Subscription&) = delete;
  Subscription& operator=(const Subscription&) = delete;
  ~Subscription() { reset(); }

  inline void reset();  // defined after Bus
  bool active() const noexcept { return bus_ != nullptr; }

 private:
  friend class Bus;
  enum class Kind : std::uint8_t { kSubscriber, kTap, kPolicy };
  Subscription(Bus* bus, Kind kind, TopicId topic, std::uint64_t id) noexcept
      : bus_(bus), kind_(kind), topic_(topic), id_(id) {}

  Bus* bus_ = nullptr;
  Kind kind_ = Kind::kSubscriber;
  TopicId topic_;  ///< meaningful for kSubscriber only
  std::uint64_t id_ = 0;
};

/// The message bus. Single-threaded by design; see the delivery contract
/// in the file header.
class Bus {
 public:
  /// Interns `name`, returning its stable handle (idempotent). The handle
  /// indexes this bus's flat topic table; resolve once, publish many.
  TopicId intern_topic(std::string_view name);
  SourceId intern_source(std::string_view name);

  /// The interned spelling behind a handle (bus-lifetime storage).
  const std::string& topic_name(TopicId topic) const {
    return topic_names_.at(topic.index_);
  }
  const std::string& source_name(SourceId source) const {
    return source_names_.at(source.index_);
  }

  /// Publishes a payload on `topic`. The payload type must match
  /// subscribers' expected type exactly; a mismatch throws
  /// std::runtime_error *before any handler runs* (it is a programming
  /// error, not an attack vector).
  ///
  /// When the topic carries a publisher restriction (restrict_publisher —
  /// the SROS2-style authentication mitigation), publications from any
  /// other source are dropped before reaching subscribers; taps (IDS)
  /// still observe the attempt, as a network IDS would.
  ///
  /// Registered delivery policies (add_delivery_policy) may drop, delay,
  /// duplicate or reorder the accepted message; without policies delivery
  /// is immediate and lossless.
  ///
  /// This id overload is the hot path: with the journal off and no taps,
  /// policies or metrics attached, it performs no allocation and no
  /// string or map lookup of any kind.
  template <typename T>
  void publish(TopicId topic, const T& payload, SourceId source,
               double time_s) {
    TopicState& ts = topics_[topic.index_];
    MessageHeader h;
    h.seq = next_seq_++;
    h.time_s = time_s;
    h.source = source_names_[source.index_];
    h.topic = topic_names_[topic.index_];
    h.topic_id = topic;
    h.source_id = source;
    // Instrumentation rides the same point as the journal: both observe
    // every publication attempt, accepted or not.
    TopicInstruments* ti = nullptr;
    if (metrics_ != nullptr) {
      ti = &instruments(topic);
      ti->publish->inc();
    }
    if (journal_enabled_) journal_push(h, typeid(T).name());
    // Taps see everything, before subscribers. Generation-counted
    // iteration: a tap may re-entrantly add taps or release tap
    // Subscriptions; entries born during this fan-out are skipped,
    // entries that died during it still see the in-flight message.
    if (!taps_.empty()) {
      FanoutGuard guard(*this);
      const std::uint64_t snap = ++epoch_;
      const std::any ref(std::cref(payload));  // fits std::any's SBO
      for (std::size_t i = 0; i < taps_.size(); ++i) {
        const TapEntry& t = taps_[i];
        if (t.born >= snap || t.died < snap) continue;
        t.tap(h, ref, std::type_index(typeid(T)));
      }
    }
    if (ts.allowed_source != kNoRestriction &&
        ts.allowed_source != source.index_) {
      ++rejected_publications_;
      if (rejected_counter_ != nullptr) rejected_counter_->inc();
      return;  // authenticated transport: unauthorized publication dropped
    }
    ++published_;
    // A type mismatch must surface deterministically, before any handler
    // runs and regardless of what the fault policies decide.
    validate_subscriber_types(ts, std::type_index(typeid(T)),
                              typeid(T).name(), h.topic);
    FaultDecision fd;
    if (!policies_.empty()) {
      // Every policy is consulted for every accepted publication (even
      // when an earlier one already dropped it), so each policy's random
      // stream advances independently of the others' decisions.
      FanoutGuard guard(*this);
      const std::uint64_t snap = ++epoch_;
      for (std::size_t i = 0; i < policies_.size(); ++i) {
        PolicyEntry& p = policies_[i];
        if (p.born >= snap || p.died < snap) continue;
        const FaultDecision d = p.policy->decide(h);
        fd.drop = fd.drop || d.drop;
        fd.delay_steps = std::max(fd.delay_steps, d.delay_steps);
        fd.duplicates += d.duplicates;
        fd.reorder = fd.reorder || d.reorder;
      }
    }
    if (fd.drop) {
      ++faults_dropped_;
      if (ti != nullptr) ti->dropped->inc();
      return;
    }
    const std::size_t copies = 1 + fd.duplicates;
    if (fd.duplicates > 0) {
      faults_duplicated_ += fd.duplicates;
      if (ti != nullptr) ti->duplicated->inc(static_cast<double>(fd.duplicates));
    }
    if (fd.delay_steps > 0) {
      faults_delayed_ += 1;
      if (ti != nullptr) ti->delayed->inc();
      Delayed d;
      d.steps_left = fd.delay_steps;
      d.source = source;
      d.deliver = [topic, h, payload, copies](Bus& bus) {
        for (std::size_t i = 0; i < copies; ++i) {
          bus.deliver_now(topic, h, payload);
        }
      };
      if (fd.reorder) {
        delayed_.push_front(std::move(d));
      } else {
        delayed_.push_back(std::move(d));
      }
      return;
    }
    for (std::size_t i = 0; i < copies; ++i) deliver_now(topic, h, payload);
  }

  /// String-keyed compatibility shim: interns on first use, then runs the
  /// id-keyed hot path. Cold callers can stay on this overload; per-call
  /// cost is two ordered-map lookups.
  template <typename T>
  void publish(std::string_view topic, const T& payload,
               std::string_view source, double time_s) {
    publish(intern_topic(topic), payload, intern_source(source), time_s);
  }

  /// Subscribes a handler to `topic`. Returns a token whose destruction
  /// unsubscribes. Delivery order is subscription order (see the file
  /// header; unsubscribing never reorders the survivors).
  template <typename T>
  [[nodiscard]] Subscription subscribe(
      TopicId topic,
      std::function<void(const MessageHeader&, const T&)> handler) {
    const std::uint64_t id = next_sub_id_++;
    Entry e;
    e.id = id;
    e.type = std::type_index(typeid(T));
    e.born = epoch_;
    e.handler = [handler = std::move(handler)](const MessageHeader& h,
                                               const void* payload) {
      handler(h, *static_cast<const T*>(payload));
    };
    topics_[topic.index_].subscribers.push_back(std::move(e));
    return Subscription(this, Subscription::Kind::kSubscriber, topic, id);
  }

  template <typename T>
  [[nodiscard]] Subscription subscribe(
      std::string_view topic,
      std::function<void(const MessageHeader&, const T&)> handler) {
    return subscribe<T>(intern_topic(topic), std::move(handler));
  }

  /// Tap invoked for every message on every topic (IDS / diagnostics).
  /// The std::any carries a std::reference_wrapper<const T>.
  using TapFn = std::function<void(const MessageHeader&, const std::any&,
                                   std::type_index)>;
  [[nodiscard]] Subscription add_tap(TapFn tap);

  /// Registers a delivery fault policy (non-owning; the policy must
  /// outlive the returned token). Multiple policies compose: a message is
  /// dropped if any policy drops it, delayed by the longest requested
  /// delay, and duplicated once per requesting policy.
  [[nodiscard]] Subscription add_delivery_policy(DeliveryPolicy* policy);

  /// Delivers every delayed message whose hold time has elapsed (called
  /// once per simulation step). Messages enqueue with their original
  /// header and reach the subscribers registered at drain time. Returns
  /// the number of delayed messages delivered this drain.
  std::size_t drain_delayed();

  /// Delayed messages currently queued.
  std::size_t delayed_pending() const noexcept { return delayed_.size(); }

  /// Discards every pending delayed delivery without delivering it and
  /// returns how many were dropped. A bus reused across scenario runs must
  /// call this between runs (sim::World does, on reset and teardown) —
  /// otherwise the next run's subscribers receive the previous run's
  /// in-flight messages. Discards are not counted as fault drops: the
  /// run that published them is over.
  std::size_t clear_delayed() noexcept {
    const std::size_t n = delayed_.size();
    delayed_.clear();
    return n;
  }

  /// Discards only the pending delayed deliveries published by `source`
  /// (mid-run vehicle removal: a crashed UAV's queued messages must not
  /// deliver after it is declared lost). Other publishers' in-flight
  /// messages keep their relative order. Returns how many were dropped.
  std::size_t clear_delayed(SourceId source) noexcept {
    std::size_t dropped = 0;
    for (std::size_t i = 0; i < delayed_.size();) {
      if (delayed_[i].source == source) {
        delayed_.erase(delayed_.begin() + static_cast<std::ptrdiff_t>(i));
        ++dropped;
      } else {
        ++i;
      }
    }
    return dropped;
  }

  /// Number of live subscribers on a topic.
  std::size_t subscriber_count(std::string_view topic) const;
  std::size_t subscriber_count(TopicId topic) const;

  /// Message journal (headers only); enabled by default. Bounded: a capped
  /// ring buffer that overwrites its oldest entry once `journal_capacity`
  /// is reached, so long campaigns cannot exhaust memory.
  void enable_journal(bool on) { journal_enabled_ = on; }
  /// Snapshot of the retained entries, oldest first.
  std::vector<JournalEntry> journal() const;
  void clear_journal() {
    journal_.clear();
    journal_head_ = 0;
    journal_dropped_ = 0;
  }
  /// Resizes the ring (default 65536 entries). Shrinking evicts the oldest
  /// entries (counted as dropped). Throws std::invalid_argument on 0.
  void set_journal_capacity(std::size_t capacity);
  std::size_t journal_capacity() const noexcept { return journal_capacity_; }
  /// Entries evicted from the ring since the journal was last cleared.
  std::uint64_t journal_dropped() const noexcept { return journal_dropped_; }

  /// Publications accepted by the transport (attempts minus ACL rejects).
  /// Messages later dropped or delayed by fault policies still count: the
  /// transport accepted them, the link lost them. The journal records
  /// every attempt, accepted or not.
  std::uint64_t messages_published() const noexcept { return published_; }

  /// Enables authenticated publishing on `topic`: only `source` may
  /// publish there; other publications are dropped (and counted). This is
  /// the paper's mitigation for the ROS spoofing vulnerability — without
  /// it the bus accepts traffic from any node. Resolved at restriction
  /// time: the publish path compares interned source ids, not strings.
  void restrict_publisher(std::string_view topic, std::string_view source);

  /// Publications dropped by publisher restrictions so far.
  std::uint64_t rejected_publications() const noexcept {
    return rejected_publications_;
  }

  /// Fault-policy outcomes so far (bus-wide; per-topic counters live in
  /// the metrics registry when one is attached).
  std::uint64_t faults_dropped() const noexcept { return faults_dropped_; }
  std::uint64_t faults_delayed() const noexcept { return faults_delayed_; }
  std::uint64_t faults_duplicated() const noexcept {
    return faults_duplicated_;
  }

  /// Attaches (nullptr: detaches) a metrics registry. While attached the
  /// bus maintains, per topic: `sesame.mw.publish_total` (every publication
  /// attempt, like the journal), `sesame.mw.deliver_total` (handler
  /// invocations), `sesame.mw.delivery_latency_seconds` (wall time to
  /// fan one message out to a topic's subscribers) and the fault-policy
  /// counters `sesame.mw.fault_dropped_total` /
  /// `sesame.mw.fault_delayed_total` / `sesame.mw.fault_duplicated_total`;
  /// plus the bus-wide `sesame.mw.rejected_total`. The registry must
  /// outlive the attachment.
  void set_metrics(obs::MetricsRegistry* registry);

 private:
  friend class Subscription;

  static constexpr std::uint64_t kLive =
      std::numeric_limits<std::uint64_t>::max();
  static constexpr std::uint32_t kNoRestriction = 0xFFFFFFFFu;

  /// A subscriber registration. `born`/`died` are bus-epoch stamps that
  /// implement copy-free re-entrant iteration: a fan-out with snapshot S
  /// invokes exactly the entries with born < S <= died-inclusive (i.e.
  /// born < S && died >= S). Dead entries are compacted (order-preserving)
  /// once no fan-out is on the stack.
  struct Entry {
    std::uint64_t id = 0;
    std::type_index type = std::type_index(typeid(void));
    std::function<void(const MessageHeader&, const void*)> handler;
    std::uint64_t born = 0;
    std::uint64_t died = kLive;
  };
  struct TapEntry {
    std::uint64_t id = 0;
    TapFn tap;
    std::uint64_t born = 0;
    std::uint64_t died = kLive;
  };
  struct PolicyEntry {
    std::uint64_t id = 0;
    DeliveryPolicy* policy = nullptr;
    std::uint64_t born = 0;
    std::uint64_t died = kLive;
  };

  /// A message held back by a fault policy; `deliver` re-runs the fan-out
  /// against the subscribers present at drain time. `source` identifies the
  /// publisher so a removed vehicle's in-flight traffic can be drained
  /// without touching anyone else's (clear_delayed(SourceId)).
  struct Delayed {
    std::size_t steps_left = 0;
    SourceId source;
    std::function<void(Bus&)> deliver;
  };

  /// Per-topic instruments, resolved once per topic then cached in the
  /// topic's flat state.
  struct TopicInstruments {
    obs::Counter* publish = nullptr;
    obs::Counter* deliver = nullptr;
    obs::Histogram* latency = nullptr;
    obs::Counter* dropped = nullptr;
    obs::Counter* delayed = nullptr;
    obs::Counter* duplicated = nullptr;
  };

  /// Everything the bus knows about one interned topic, index-addressed
  /// by TopicId. Lives in a deque: references stay valid while handlers
  /// intern new topics mid-delivery.
  struct TopicState {
    std::deque<Entry> subscribers;
    std::uint32_t allowed_source = kNoRestriction;  ///< ACL (SourceId index)
    TopicInstruments instruments;
    bool instruments_ready = false;
    bool has_tombstones = false;
  };

  /// Tracks fan-out nesting; when the outermost fan-out unwinds, dead
  /// registrations are compacted (they cannot be erased mid-iteration).
  struct FanoutGuard {
    explicit FanoutGuard(Bus& b) noexcept : bus(b) { ++bus.fanout_depth_; }
    ~FanoutGuard() {
      if (--bus.fanout_depth_ == 0 && bus.tombstones_pending_) bus.compact();
    }
    Bus& bus;
  };

  TopicInstruments& instruments(TopicId topic);

  /// Throws std::runtime_error if any live subscriber on the topic expects
  /// a payload type other than `type`.
  void validate_subscriber_types(const TopicState& ts, std::type_index type,
                                 const char* type_name,
                                 std::string_view topic) const;

  /// Unregisters a subscriber/tap/policy (Subscription::reset). Outside a
  /// fan-out the entry is erased immediately (ordered — delivery order of
  /// the survivors is preserved); inside one it is tombstoned and swept
  /// when the outermost fan-out unwinds.
  void remove_registration(Subscription::Kind kind, TopicId topic,
                           std::uint64_t id);

  /// Order-preserving removal of tombstoned entries; only called with no
  /// fan-out on the stack.
  void compact();

  void journal_push(const MessageHeader& h, const char* type_name) {
    if (journal_.size() < journal_capacity_) {
      journal_.push_back(JournalEntry{h, type_name});
      return;
    }
    journal_[journal_head_] = JournalEntry{h, type_name};
    if (++journal_head_ == journal_capacity_) journal_head_ = 0;
    ++journal_dropped_;
  }

  /// Synchronous fan-out of one message to the current subscribers.
  /// Re-validates types (the subscriber set may have changed since a
  /// delayed message was enqueued) and records delivery metrics for the
  /// handlers that completed, even when one of them throws.
  template <typename T>
  void deliver_now(TopicId topic, const MessageHeader& h, const T& payload) {
    TopicState& ts = topics_[topic.index_];
    if (ts.subscribers.empty()) return;
    validate_subscriber_types(ts, std::type_index(typeid(T)),
                              typeid(T).name(), h.topic);
    TopicInstruments* ti =
        metrics_ != nullptr ? &instruments(topic) : nullptr;
    const auto t0 = ti != nullptr ? std::chrono::steady_clock::now()
                                  : std::chrono::steady_clock::time_point{};
    FanoutGuard guard(*this);
    const std::uint64_t snap = ++epoch_;
    std::size_t completed = 0;
    const auto record = [&] {
      if (ti == nullptr) return;
      ti->deliver->inc(static_cast<double>(completed));
      ti->latency->observe(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count());
    };
    try {
      // Index-based: handlers may subscribe re-entrantly, growing the
      // deque (which keeps existing entries' addresses stable).
      for (std::size_t i = 0; i < ts.subscribers.size(); ++i) {
        const Entry& e = ts.subscribers[i];
        if (e.born >= snap || e.died < snap) continue;
        e.handler(h, &payload);
        ++completed;
      }
    } catch (...) {
      record();  // the handlers that ran are still accounted for
      throw;
    }
    record();
  }

  // --- interning ---------------------------------------------------------
  // Names live in deques (stable addresses — MessageHeader views point
  // here); the maps are the cold-path name → id resolvers.
  std::deque<std::string> topic_names_;
  std::deque<std::string> source_names_;
  std::map<std::string, std::uint32_t, std::less<>> topic_index_;
  std::map<std::string, std::uint32_t, std::less<>> source_index_;
  /// Flat per-topic state, indexed by TopicId. Deque: handler re-entrancy
  /// may intern new topics while a fan-out holds a TopicState reference.
  std::deque<TopicState> topics_;

  // --- registries ---------------------------------------------------------
  std::deque<TapEntry> taps_;
  std::deque<PolicyEntry> policies_;
  std::deque<Delayed> delayed_;

  // --- journal ring -------------------------------------------------------
  std::vector<JournalEntry> journal_;
  std::size_t journal_head_ = 0;      ///< oldest slot once the ring is full
  std::size_t journal_capacity_ = 65536;
  std::uint64_t journal_dropped_ = 0;
  bool journal_enabled_ = true;

  // --- bookkeeping --------------------------------------------------------
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* rejected_counter_ = nullptr;
  std::uint64_t epoch_ = 0;
  int fanout_depth_ = 0;
  bool tombstones_pending_ = false;
  bool taps_tombstoned_ = false;
  bool policies_tombstoned_ = false;
  std::uint64_t next_seq_ = 0;
  std::uint64_t published_ = 0;
  std::uint64_t rejected_publications_ = 0;
  std::uint64_t faults_dropped_ = 0;
  std::uint64_t faults_delayed_ = 0;
  std::uint64_t faults_duplicated_ = 0;
  std::uint64_t next_sub_id_ = 0;
};

inline void Subscription::reset() {
  if (bus_ == nullptr) return;
  Bus* bus = bus_;
  bus_ = nullptr;
  bus->remove_registration(kind_, topic_, id_);
}

}  // namespace sesame::mw
