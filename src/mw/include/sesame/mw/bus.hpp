// In-process typed publish/subscribe middleware.
//
// Stands in for ROS in the paper's architecture: UAV nodes, the ground
// control station, EDDIs and the IDS all communicate over named topics.
// Deliberately reproduces the property the paper exploits in its security
// scenario — *any* participant can publish to any topic (no authentication),
// so a spoofing node can inject falsified telemetry/waypoints. The IDS taps
// the bus through `add_tap` to inspect traffic.
//
// Delivery contract (single-threaded by design — the simulator steps the
// world deterministically, so fan-out is synchronous and in subscription
// order):
//  - Each publication runs the pipeline journal → taps → ACL → type
//    validation → fault policies → delivery. Taps and the journal observe
//    every attempt; the ACL drops unauthorized publications before
//    subscribers; subscriber payload types are validated *before* any
//    handler runs; registered `DeliveryPolicy` objects may then drop,
//    delay, duplicate or reorder the message (see fault_plan.hpp).
//  - Re-entrancy: tap and subscriber lists are copied before each fan-out,
//    so handlers may freely (un)subscribe, add taps, or release their own
//    Subscription mid-delivery. A handler or tap removed during a fan-out
//    still observes the in-flight message; one added during a fan-out
//    first observes the next message. Delivery policies must not mutate
//    the bus from inside decide().
//  - Delayed messages sit in a queue drained by `drain_delayed()` (called
//    once per `sim::World::step`); they are delivered to the subscribers
//    registered *at drain time*, with their original header.
#pragma once

#include <any>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <typeindex>
#include <vector>

#include "sesame/obs/metrics.hpp"

namespace sesame::mw {

/// Metadata attached to every published message.
struct MessageHeader {
  std::uint64_t seq = 0;       ///< bus-wide sequence number
  double time_s = 0.0;         ///< publisher's notion of mission time
  std::string source;          ///< publishing node name (unauthenticated!)
  std::string topic;
};

/// Journal entry kept for diagnostics and the IDS.
struct JournalEntry {
  MessageHeader header;
  std::string type_name;  ///< mangled C++ type of the payload
};

/// What a delivery policy decided for one accepted publication.
struct FaultDecision {
  bool drop = false;          ///< lose the message in flight
  std::size_t delay_steps = 0;  ///< 0 = deliver now; N = after N drains
  std::size_t duplicates = 0;   ///< extra copies delivered
  bool reorder = false;  ///< delayed copies jump ahead of earlier ones
};

/// Pluggable per-publication delivery fault model. Implementations must be
/// deterministic given the publication sequence (any randomness must come
/// from an owned seeded RNG) and must not mutate the bus from decide().
class DeliveryPolicy {
 public:
  virtual ~DeliveryPolicy() = default;
  virtual FaultDecision decide(const MessageHeader& header) = 0;
};

/// Token returned by subscribe/tap/policy registration; unsubscribes on
/// release.
class Subscription {
 public:
  Subscription() = default;
  explicit Subscription(std::function<void()> unsubscribe)
      : unsubscribe_(std::move(unsubscribe)) {}
  Subscription(Subscription&&) = default;
  Subscription& operator=(Subscription&& o) {
    if (this != &o) {  // self-move must not release the live registration
      reset();
      unsubscribe_ = std::move(o.unsubscribe_);
      o.unsubscribe_ = nullptr;
    }
    return *this;
  }
  Subscription(const Subscription&) = delete;
  Subscription& operator=(const Subscription&) = delete;
  ~Subscription() { reset(); }

  void reset() {
    if (unsubscribe_) {
      unsubscribe_();
      unsubscribe_ = nullptr;
    }
  }
  bool active() const noexcept { return static_cast<bool>(unsubscribe_); }

 private:
  std::function<void()> unsubscribe_;
};

/// The message bus. Single-threaded by design; see the delivery contract
/// in the file header.
class Bus {
 public:
  /// Publishes a payload on `topic`. The payload type must match
  /// subscribers' expected type exactly; a mismatch throws
  /// std::runtime_error *before any handler runs* (it is a programming
  /// error, not an attack vector).
  ///
  /// When the topic carries a publisher restriction (restrict_publisher —
  /// the SROS2-style authentication mitigation), publications from any
  /// other source are dropped before reaching subscribers; taps (IDS)
  /// still observe the attempt, as a network IDS would.
  ///
  /// Registered delivery policies (add_delivery_policy) may drop, delay,
  /// duplicate or reorder the accepted message; without policies delivery
  /// is immediate and lossless.
  template <typename T>
  void publish(const std::string& topic, const T& payload,
               const std::string& source, double time_s) {
    MessageHeader h;
    h.seq = next_seq_++;
    h.time_s = time_s;
    h.source = source;
    h.topic = topic;
    // Instrumentation rides the same point as the journal: both observe
    // every publication attempt, accepted or not.
    TopicInstruments* ti = nullptr;
    if (metrics_ != nullptr) {
      ti = &instruments(topic);
      ti->publish->inc();
    }
    if (journal_enabled_) {
      journal_.push_back({h, typeid(T).name()});
    }
    // Taps see everything, before subscribers. Iterate over a copy: a tap
    // may re-entrantly add taps or release tap Subscriptions, which would
    // invalidate the registry iterators.
    if (!taps_.empty()) {
      std::vector<TapFn> taps;
      taps.reserve(taps_.size());
      for (const auto& [id, tap] : taps_) taps.push_back(tap);
      for (const auto& tap : taps) {
        tap(h, std::any(std::cref(payload)), std::type_index(typeid(T)));
      }
    }
    if (const auto acl = acl_.find(topic);
        acl != acl_.end() && acl->second != source) {
      ++rejected_publications_;
      if (rejected_counter_ != nullptr) rejected_counter_->inc();
      return;  // authenticated transport: unauthorized publication dropped
    }
    ++published_;
    // A type mismatch must surface deterministically, before any handler
    // runs and regardless of what the fault policies decide.
    validate_subscriber_types(topic, std::type_index(typeid(T)),
                              typeid(T).name());
    FaultDecision fd;
    if (!policies_.empty()) {
      // Every policy is consulted for every accepted publication (even
      // when an earlier one already dropped it), so each policy's random
      // stream advances independently of the others' decisions.
      std::vector<DeliveryPolicy*> policies;
      policies.reserve(policies_.size());
      for (const auto& [id, p] : policies_) policies.push_back(p);
      for (DeliveryPolicy* p : policies) {
        const FaultDecision d = p->decide(h);
        fd.drop = fd.drop || d.drop;
        fd.delay_steps = std::max(fd.delay_steps, d.delay_steps);
        fd.duplicates += d.duplicates;
        fd.reorder = fd.reorder || d.reorder;
      }
    }
    if (fd.drop) {
      ++faults_dropped_;
      if (ti != nullptr) ti->dropped->inc();
      return;
    }
    const std::size_t copies = 1 + fd.duplicates;
    if (fd.duplicates > 0) {
      faults_duplicated_ += fd.duplicates;
      if (ti != nullptr) ti->duplicated->inc(static_cast<double>(fd.duplicates));
    }
    if (fd.delay_steps > 0) {
      faults_delayed_ += 1;
      if (ti != nullptr) ti->delayed->inc();
      Delayed d;
      d.steps_left = fd.delay_steps;
      d.deliver = [topic, h, payload, copies](Bus& bus) {
        for (std::size_t i = 0; i < copies; ++i) {
          bus.deliver_now(topic, h, payload);
        }
      };
      if (fd.reorder) {
        delayed_.push_front(std::move(d));
      } else {
        delayed_.push_back(std::move(d));
      }
      return;
    }
    for (std::size_t i = 0; i < copies; ++i) deliver_now(topic, h, payload);
  }

  /// Subscribes a handler to `topic`. Returns a token whose destruction
  /// unsubscribes.
  template <typename T>
  [[nodiscard]] Subscription subscribe(
      const std::string& topic,
      std::function<void(const MessageHeader&, const T&)> handler) {
    const std::uint64_t id = next_sub_id_++;
    Entry e;
    e.id = id;
    e.type = std::type_index(typeid(T));
    e.handler = [handler = std::move(handler)](const MessageHeader& h,
                                               const void* payload) {
      handler(h, *static_cast<const T*>(payload));
    };
    subscribers_[topic].push_back(std::move(e));
    return Subscription([this, topic, id] {
      auto& list = subscribers_[topic];
      for (auto it = list.begin(); it != list.end(); ++it) {
        if (it->id == id) {
          list.erase(it);
          break;
        }
      }
    });
  }

  /// Tap invoked for every message on every topic (IDS / diagnostics).
  /// The std::any carries a std::reference_wrapper<const T>.
  using TapFn = std::function<void(const MessageHeader&, const std::any&,
                                   std::type_index)>;
  [[nodiscard]] Subscription add_tap(TapFn tap);

  /// Registers a delivery fault policy (non-owning; the policy must
  /// outlive the returned token). Multiple policies compose: a message is
  /// dropped if any policy drops it, delayed by the longest requested
  /// delay, and duplicated once per requesting policy.
  [[nodiscard]] Subscription add_delivery_policy(DeliveryPolicy* policy);

  /// Delivers every delayed message whose hold time has elapsed (called
  /// once per simulation step). Messages enqueue with their original
  /// header and reach the subscribers registered at drain time. Returns
  /// the number of delayed messages delivered this drain.
  std::size_t drain_delayed();

  /// Delayed messages currently queued.
  std::size_t delayed_pending() const noexcept { return delayed_.size(); }

  /// Discards every pending delayed delivery without delivering it and
  /// returns how many were dropped. A bus reused across scenario runs must
  /// call this between runs (sim::World does, on reset and teardown) —
  /// otherwise the next run's subscribers receive the previous run's
  /// in-flight messages. Discards are not counted as fault drops: the
  /// run that published them is over.
  std::size_t clear_delayed() noexcept {
    const std::size_t n = delayed_.size();
    delayed_.clear();
    return n;
  }

  /// Number of registered subscribers on a topic.
  std::size_t subscriber_count(const std::string& topic) const;

  /// Message journal (headers only); enabled by default.
  void enable_journal(bool on) { journal_enabled_ = on; }
  const std::vector<JournalEntry>& journal() const noexcept { return journal_; }
  void clear_journal() { journal_.clear(); }

  /// Publications accepted by the transport (attempts minus ACL rejects).
  /// Messages later dropped or delayed by fault policies still count: the
  /// transport accepted them, the link lost them. The journal records
  /// every attempt, accepted or not.
  std::uint64_t messages_published() const noexcept { return published_; }

  /// Enables authenticated publishing on `topic`: only `source` may
  /// publish there; other publications are dropped (and counted). This is
  /// the paper's mitigation for the ROS spoofing vulnerability — without
  /// it the bus accepts traffic from any node.
  void restrict_publisher(const std::string& topic, const std::string& source);

  /// Publications dropped by publisher restrictions so far.
  std::uint64_t rejected_publications() const noexcept {
    return rejected_publications_;
  }

  /// Fault-policy outcomes so far (bus-wide; per-topic counters live in
  /// the metrics registry when one is attached).
  std::uint64_t faults_dropped() const noexcept { return faults_dropped_; }
  std::uint64_t faults_delayed() const noexcept { return faults_delayed_; }
  std::uint64_t faults_duplicated() const noexcept {
    return faults_duplicated_;
  }

  /// Attaches (nullptr: detaches) a metrics registry. While attached the
  /// bus maintains, per topic: `sesame.mw.publish_total` (every publication
  /// attempt, like the journal), `sesame.mw.deliver_total` (handler
  /// invocations), `sesame.mw.delivery_latency_seconds` (wall time to
  /// fan one message out to a topic's subscribers) and the fault-policy
  /// counters `sesame.mw.fault_dropped_total` /
  /// `sesame.mw.fault_delayed_total` / `sesame.mw.fault_duplicated_total`;
  /// plus the bus-wide `sesame.mw.rejected_total`. The registry must
  /// outlive the attachment.
  void set_metrics(obs::MetricsRegistry* registry);

 private:
  struct Entry {
    std::uint64_t id = 0;
    std::type_index type = std::type_index(typeid(void));
    std::function<void(const MessageHeader&, const void*)> handler;
  };

  /// A message held back by a fault policy; `deliver` re-runs the fan-out
  /// against the subscribers present at drain time.
  struct Delayed {
    std::size_t steps_left = 0;
    std::function<void(Bus&)> deliver;
  };

  /// Per-topic instruments, looked up once per topic then cached.
  struct TopicInstruments {
    obs::Counter* publish = nullptr;
    obs::Counter* deliver = nullptr;
    obs::Histogram* latency = nullptr;
    obs::Counter* dropped = nullptr;
    obs::Counter* delayed = nullptr;
    obs::Counter* duplicated = nullptr;
  };
  TopicInstruments& instruments(const std::string& topic);

  /// Throws std::runtime_error if any subscriber on `topic` expects a
  /// payload type other than `type`.
  void validate_subscriber_types(const std::string& topic,
                                 std::type_index type,
                                 const char* type_name) const;

  /// Synchronous fan-out of one message to the current subscribers.
  /// Re-validates types (the subscriber set may have changed since a
  /// delayed message was enqueued) and records delivery metrics for the
  /// handlers that completed, even when one of them throws.
  template <typename T>
  void deliver_now(const std::string& topic, const MessageHeader& h,
                   const T& payload) {
    const auto it = subscribers_.find(topic);
    if (it == subscribers_.end()) return;
    // Copy the handler list: handlers may (un)subscribe re-entrantly.
    auto handlers = it->second;
    validate_subscriber_types(topic, std::type_index(typeid(T)),
                              typeid(T).name());
    TopicInstruments* ti =
        metrics_ != nullptr ? &instruments(topic) : nullptr;
    const auto t0 = ti != nullptr ? std::chrono::steady_clock::now()
                                  : std::chrono::steady_clock::time_point{};
    std::size_t completed = 0;
    const auto record = [&] {
      if (ti == nullptr) return;
      ti->deliver->inc(static_cast<double>(completed));
      ti->latency->observe(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count());
    };
    try {
      for (const auto& s : handlers) {
        s.handler(h, &payload);
        ++completed;
      }
    } catch (...) {
      record();  // the handlers that ran are still accounted for
      throw;
    }
    record();
  }

  std::map<std::string, std::vector<Entry>> subscribers_;
  std::map<std::string, std::string> acl_;  // topic -> sole allowed source
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* rejected_counter_ = nullptr;
  std::map<std::string, TopicInstruments> instruments_;
  std::uint64_t rejected_publications_ = 0;
  std::map<std::uint64_t, TapFn> taps_;
  std::map<std::uint64_t, DeliveryPolicy*> policies_;
  std::deque<Delayed> delayed_;
  std::vector<JournalEntry> journal_;
  bool journal_enabled_ = true;
  std::uint64_t next_seq_ = 0;
  std::uint64_t published_ = 0;
  std::uint64_t faults_dropped_ = 0;
  std::uint64_t faults_delayed_ = 0;
  std::uint64_t faults_duplicated_ = 0;
  std::uint64_t next_sub_id_ = 0;
};

}  // namespace sesame::mw
