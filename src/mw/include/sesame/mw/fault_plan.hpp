// Deterministic fault injection for the message bus.
//
// The bus is a perfect transport by default: every accepted publication
// reaches every subscriber instantly. Real UAV C2 links are not — the
// dependability scenarios (ConSert demotion on link loss, IDS robustness
// under degraded telemetry) need messages that are *lost, late, repeated
// or reordered* on demand, reproducibly. A `FaultPlan` is a list of rules
// matched against each publication's header; the `FaultInjector` policy
// applies them with its own seeded RNG, so the same plan and seed produce
// the same fault sequence on every run (the determinism contract in
// docs/FAULT_INJECTION.md).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sesame/mathx/rng.hpp"
#include "sesame/mw/bus.hpp"

namespace sesame::mw {

/// One fault rule: a (topic, source, time-window) match plus the faults to
/// apply. The first rule of a plan that matches a publication wins.
struct FaultRule {
  // --- match -------------------------------------------------------------
  std::string topic_prefix;  ///< "" = any; else topic must start with this
  std::string topic_suffix;  ///< "" = any; else topic must end with this
  std::string source;        ///< "" = any; else exact publisher match
  double start_time_s = 0.0;  ///< rule active from this publish time
  double stop_time_s = std::numeric_limits<double>::infinity();  ///< exclusive

  // --- effects -----------------------------------------------------------
  double drop_probability = 0.0;       ///< message lost in flight
  double delay_probability = 0.0;      ///< message held for `delay_steps`
  std::size_t delay_steps = 1;         ///< drain cycles a delayed message waits
  double duplicate_probability = 0.0;  ///< message delivered twice
  bool reorder = false;  ///< delayed messages jump ahead of earlier ones

  bool matches(const MessageHeader& header) const;

  /// Throws std::invalid_argument on out-of-range probabilities, a zero
  /// delay, or an empty time window.
  void validate() const;
};

/// A reproducible fault schedule: rules plus the seed of the dedicated
/// random stream that realizes their probabilities.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultRule> rules;

  /// The CI stress plan: drop + delay + duplicate + reorder on every
  /// telemetry topic — lossy, laggy, chatty links for sanitizer runs.
  static FaultPlan telemetry_stress();
};

/// Parses the line-based fault-plan format (docs/FAULT_INJECTION.md):
///
///   # comment
///   seed 1337
///   rule topic=uav/uav1/ suffix=/telemetry drop=0.1 delay=0.2:3 dup=0.05
///   rule source=attacker drop=1.0 from=60 until=120 reorder
///
/// Throws std::runtime_error on malformed input, std::invalid_argument on
/// structurally invalid rules.
FaultPlan parse_fault_plan(const std::string& text);

/// Reads and parses a fault-plan file.
FaultPlan load_fault_plan(const std::string& path);

/// The standard delivery policy: realizes a FaultPlan with a private
/// seeded RNG. Random draws happen only for publications matched by a
/// rule, so the fault sequence depends solely on the plan and the order
/// of matched publications — never on unrelated traffic.
class FaultInjector : public DeliveryPolicy {
 public:
  /// Validates every rule; throws std::invalid_argument on a bad plan.
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const noexcept { return plan_; }

  FaultDecision decide(const MessageHeader& header) override;

 private:
  FaultPlan plan_;
  mathx::Rng rng_;
};

}  // namespace sesame::mw
