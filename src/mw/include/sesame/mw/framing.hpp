// Framed byte-stream transport for codec messages (docs/PROTOCOL.md).
//
// A serial link / socket delivers an undifferentiated byte stream; this
// layer turns it into a sequence of integrity-checked frames with flow
// control, in the style of the SESAME serial stack the paper's platform
// uses between flight controller and companion computer:
//
//   message bytes (mw::Codec)
//        │ Message frame (type + link seq)
//   [ windowed ]   Init / InitResponse / ReleaseWindow control frames
//        │ protect() — pluggable authenticated-encryption hook
//   [ security ]   identity transform by default
//        │ + CRC32 (over the protected bytes, so corruption is caught
//        │          before any crypto runs)
//   [  COBS    ]   zero-delimited packets; a 0x00 byte never appears
//        │          inside a packet, so resync after corruption is
//        ▼          "skip to the next zero"
//   byte stream (socketpair, pipe, UART...)
//
// Receive discipline (the fuzz contract, tests/test_wire.cpp):
//  - `feed()` never throws on wire input and never reads outside the
//    bytes handed to it. Malformed input — bad COBS, bad CRC, failed
//    authentication, truncated or unknown frames, oversized packets —
//    increments the matching counter, bumps `resyncs`, and skips to the
//    next delimiter. A frame whose CRC does not match is *never*
//    delivered.
//  - Replay protection: every frame carries a per-direction monotonically
//    increasing link sequence number. A frame whose sequence is ≤ the
//    last accepted one is rejected (`replays_rejected`); a forward jump
//    is accepted and counted (`seq_gaps` — expected after a resync). An
//    `Init` frame resets the expectation (session restart).
//
// Flow control (SESAME windowed layer): `Init` advertises how many
// Message frames the sender may have outstanding toward us; the peer
// answers `InitResponse`; each delivered Message is credited back with
// `ReleaseWindow`. Messages submitted while the window is closed queue
// locally (`window_stalls` counts the stalls) and flush as credit
// arrives — nothing is dropped by flow control.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <vector>

namespace sesame::mw {

/// Appends the COBS encoding of `in` plus the trailing 0x00 delimiter to
/// `out`. Worst-case overhead is ⌈n/254⌉ + 1 bytes plus the delimiter.
void cobs_encode(std::span<const std::uint8_t> in,
                 std::vector<std::uint8_t>& out);

/// Decodes one delimiter-free COBS block into `out` (appending). Returns
/// false — leaving partial output in place — on malformed input (embedded
/// zero byte, group running past the end, empty input).
bool cobs_decode(std::span<const std::uint8_t> in,
                 std::vector<std::uint8_t>& out);

/// CRC-32 (IEEE 802.3: reflected, polynomial 0xEDB88320, init/final
/// 0xFFFFFFFF). crc32_ieee("123456789") == 0xCBF43926.
std::uint32_t crc32_ieee(std::span<const std::uint8_t> bytes) noexcept;

/// Authenticated-encryption hook applied to every frame between the
/// windowed layer and the CRC/COBS envelope. The default (no transform
/// installed) is the identity. Implementations transform the frame bytes
/// in place/by growth — e.g. append a MAC in `protect` and strip+verify it
/// in `unprotect`. `unprotect` returning false means authentication
/// failed: the frame is discarded and counted, never parsed.
class SecurityTransform {
 public:
  virtual ~SecurityTransform() = default;
  virtual void protect(std::vector<std::uint8_t>& frame) = 0;
  virtual bool unprotect(std::vector<std::uint8_t>& frame) = 0;
};

struct FramingConfig {
  /// Message frames we are willing to have outstanding *toward us*
  /// (advertised in our Init/InitResponse). Must be ≥ 1.
  std::uint16_t window = 64;
  /// Upper bound on one frame's plaintext bytes; larger inbound packets
  /// are discarded as malformed, larger outbound messages throw.
  std::size_t max_frame_bytes = 1 << 16;
  /// Optional security hook (non-owning; must outlive the Framing).
  SecurityTransform* transform = nullptr;
};

/// Transport counters. Everything here is cumulative since construction;
/// `mw::BusBridge` mirrors them into the metrics registry as
/// `sesame.wire.*` series.
struct LinkCounters {
  std::uint64_t frames_tx = 0;   ///< frames emitted (incl. control)
  std::uint64_t frames_rx = 0;   ///< frames accepted (incl. control)
  std::uint64_t bytes_tx = 0;    ///< wire bytes emitted
  std::uint64_t bytes_rx = 0;    ///< wire bytes consumed
  std::uint64_t messages_tx = 0; ///< Message frames sent
  std::uint64_t messages_rx = 0; ///< Message frames delivered to the sink
  std::uint64_t cobs_errors = 0;      ///< packets failing COBS decode
  std::uint64_t crc_errors = 0;       ///< packets failing the CRC32 check
  std::uint64_t auth_failures = 0;    ///< SecurityTransform::unprotect == false
  std::uint64_t malformed_frames = 0; ///< short/unknown/oversized frames
  std::uint64_t replays_rejected = 0; ///< link seq ≤ last accepted
  std::uint64_t seq_gaps = 0;         ///< forward sequence jumps accepted
  std::uint64_t resyncs = 0;          ///< packets discarded for any reason
  std::uint64_t window_stalls = 0;    ///< sends queued on a closed window
};

/// One full-duplex framed endpoint. Byte-oriented and transport-agnostic:
/// the owner moves `take_outbound()` bytes to the wire and `feed()`s
/// whatever arrives. Single-threaded, like the bus.
class Framing {
 public:
  /// Wire protocol version this build speaks (negotiated down via Init).
  static constexpr std::uint16_t kProtocolVersion = 1;

  enum class FrameType : std::uint8_t {
    kInit = 0x01,
    kInitResponse = 0x02,
    kReleaseWindow = 0x03,
    kMessage = 0x04,
  };

  /// Invoked once per accepted Message frame with the frame's payload
  /// (borrowed — valid only during the call) and its link sequence.
  using MessageSink =
      std::function<void(std::span<const std::uint8_t>, std::uint64_t)>;

  /// Throws std::invalid_argument on a zero window.
  explicit Framing(FramingConfig config = {});

  /// Queues our Init frame (idempotent). Either side may start; a
  /// handshake completes when both an Init (theirs) and an InitResponse
  /// (to ours) have been seen — in practice one feed() exchange.
  void start();
  bool established() const noexcept { return established_; }
  /// Protocol version agreed with the peer (0 before the handshake).
  std::uint16_t negotiated_version() const noexcept { return negotiated_; }

  /// Submits one message payload. Sent immediately when the peer window
  /// allows, queued otherwise. Throws std::length_error when the payload
  /// cannot fit max_frame_bytes.
  void send_message(std::span<const std::uint8_t> payload);

  /// Message-frame credit currently available toward the peer.
  std::uint32_t send_credit() const noexcept { return send_credit_; }
  /// Messages queued waiting for credit (or for the handshake).
  std::size_t queued_messages() const noexcept { return pending_.size(); }

  /// Drains the bytes to put on the wire.
  std::vector<std::uint8_t> take_outbound();
  bool has_outbound() const noexcept { return !outbound_.empty(); }

  /// Consumes received wire bytes, delivering every accepted Message
  /// frame's payload to `sink`. Partial packets are buffered for the next
  /// feed. Never throws on wire input.
  void feed(std::span<const std::uint8_t> bytes, const MessageSink& sink);

  const LinkCounters& counters() const noexcept { return counters_; }

 private:
  void emit_frame(FrameType type, std::span<const std::uint8_t> body);
  void handle_packet(std::span<const std::uint8_t> packet,
                     const MessageSink& sink);
  void flush_pending();

  FramingConfig config_;
  std::vector<std::uint8_t> outbound_;   ///< wire bytes not yet taken
  std::vector<std::uint8_t> rx_buf_;     ///< partial packet accumulator
  std::deque<std::vector<std::uint8_t>> pending_;  ///< awaiting credit
  LinkCounters counters_;
  std::uint64_t tx_seq_ = 0;        ///< last sequence sent
  std::uint64_t rx_last_seq_ = 0;   ///< last sequence accepted
  std::uint32_t send_credit_ = 0;   ///< Message frames we may still send
  std::uint16_t negotiated_ = 0;
  bool started_ = false;
  bool established_ = false;
};

}  // namespace sesame::mw
