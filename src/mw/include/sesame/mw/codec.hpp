// Wire-format codec for bus messages (docs/PROTOCOL.md).
//
// The bus is typed and in-process: payloads cross it as C++ objects and
// topic/source names are interned per bus. To take a publication across a
// process boundary the codec flattens it into a versioned, little-endian
// byte string — interned ids are resolved back to their spellings (intern
// tables are process-local and never ride the wire), the payload is encoded
// through a registered per-type schema, and the whole message is prefixed
// with a schema-version header so readers can reject what they do not
// speak.
//
// Layering: the codec produces and consumes *message* byte strings; it
// knows nothing about packet boundaries, integrity or flow control — that
// is `mw::Framing` (COBS + CRC32 + windowed transport), and the two are
// glued to live buses by `mw::BusBridge`.
//
// Decode discipline (the fuzz contract, tested in tests/test_wire.cpp):
//  - `Codec::decode` never throws, never reads outside the input span, and
//    returns std::nullopt on any structural problem (truncation, lengths
//    pointing past the end, unsupported version is *not* structural — it
//    decodes fine and is rejected by the delivery layer, so counters can
//    tell "garbage" from "future peer").
//  - The returned DecodedMessage borrows from the input buffer: topic,
//    source and payload are `string_view`s into the caller's bytes — the
//    structural pass copies nothing. Typed payload decode (into a real
//    `sim::Telemetry` etc.) copies exactly once, into the value delivered
//    to subscribers.
//  - `WireReader` is a poisoning reader: the first over-read clears `ok()`
//    and every subsequent read returns zeros/empties, so payload decoders
//    are straight-line code with one validity check at the end.
//
// Type registry: payload types are registered with a wire tag (stable
// protocol constants — see docs/PROTOCOL.md §5), an encoder and a decoder.
// `mw` registers the primitives (f64, string, bool, i64) in the Codec
// constructor; domain modules add their own (`sim::register_wire_types`,
// `security::register_wire_types`). Both federation endpoints must agree
// on tags — that is what the PROTOCOL.md tables pin down.
#pragma once

#include <any>
#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <typeindex>
#include <vector>

#include "sesame/mw/bus.hpp"

namespace sesame::mw {

/// Little-endian byte-string builder. All multi-byte integers are LE;
/// doubles travel as the LE bytes of their IEEE-754 bit pattern.
class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }
  /// Raw bytes, no length prefix.
  void bytes(std::span<const std::uint8_t> b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
  }
  /// u16 length + bytes. Throws std::length_error above 65535 bytes.
  void str16(std::string_view s) {
    if (s.size() > 0xFFFF) throw std::length_error("wire string > 64 KiB");
    u16(static_cast<std::uint16_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  /// u32 length + bytes.
  void str32(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  std::size_t size() const noexcept { return buf_.size(); }
  const std::vector<std::uint8_t>& buffer() const noexcept { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  /// Patches a previously written u32 in place (length back-fill).
  void patch_u32(std::size_t offset, std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      buf_.at(offset + static_cast<std::size_t>(i)) =
          static_cast<std::uint8_t>(v >> (8 * i));
  }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian reader over a borrowed buffer. Never
/// throws: the first out-of-bounds read poisons the reader (`ok()` goes
/// false) and all further reads yield zeros/empty views, so decoders can
/// run straight through and test validity once.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}
  explicit WireReader(std::string_view data) noexcept
      : data_(reinterpret_cast<const std::uint8_t*>(data.data()),
              data.size()) {}

  bool ok() const noexcept { return ok_; }
  std::size_t remaining() const noexcept { return data_.size() - off_; }
  /// Poisons the reader (a decoder rejecting a semantically invalid
  /// field — e.g. an out-of-range enum — reports it the same way as a
  /// structural over-read).
  void fail() noexcept { ok_ = false; }

  std::uint8_t u8() noexcept {
    if (!take(1)) return 0;
    return data_[off_ - 1];
  }
  std::uint16_t u16() noexcept {
    if (!take(2)) return 0;
    return static_cast<std::uint16_t>(data_[off_ - 2] |
                                      (data_[off_ - 1] << 8));
  }
  std::uint32_t u32() noexcept {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(data_[off_ - 4 + i]) << (8 * i);
    return v;
  }
  std::uint64_t u64() noexcept {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(data_[off_ - 8 + i]) << (8 * i);
    return v;
  }
  std::int64_t i64() noexcept { return static_cast<std::int64_t>(u64()); }
  double f64() noexcept {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  bool boolean() noexcept {
    const std::uint8_t b = u8();
    if (b > 1) fail();  // strict: anything but 0/1 is malformed
    return b == 1;
  }
  /// u16 length + bytes; the view borrows from the input buffer.
  std::string_view str16() noexcept { return view(u16()); }
  /// u32 length + bytes; the view borrows from the input buffer.
  std::string_view str32() noexcept { return view(u32()); }

 private:
  bool take(std::size_t n) noexcept {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return false;
    }
    off_ += n;
    return true;
  }
  std::string_view view(std::size_t n) noexcept {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return {};
    }
    const char* p = reinterpret_cast<const char*>(data_.data() + off_);
    off_ += n;
    return {p, n};
  }

  std::span<const std::uint8_t> data_;
  std::size_t off_ = 0;
  bool ok_ = true;
};

/// Pre-encode view of one publication (what rides in front of the payload).
/// `seq` is the *origin* bus's sequence number — diagnostic on the far
/// side, where the receiving bus assigns its own.
struct OutboundMessage {
  std::string_view topic;
  std::string_view source;
  std::uint64_t seq = 0;
  double time_s = 0.0;
};

/// Structural decode of one message: fixed header fields plus borrowed
/// views into the input buffer (zero-copy — valid only while the caller's
/// bytes are).
struct DecodedMessage {
  std::uint16_t version = 0;
  std::uint32_t payload_tag = 0;
  std::uint64_t seq = 0;
  double time_s = 0.0;
  std::string_view topic;
  std::string_view source;
  std::string_view payload;  ///< still-encoded payload bytes
};

/// Outcome of delivering a decoded message into a live bus.
enum class DeliverResult {
  kDelivered,         ///< payload decoded and published
  kUnsupportedVersion,///< message schema version this codec does not speak
  kUnknownTag,        ///< payload type not registered here
  kMalformedPayload,  ///< registered decoder rejected the payload bytes
};

/// The message codec: fixed header layout + a registry of payload-type
/// schemas. One Codec is shared by both directions of a bridge; register
/// every type the federation carries before traffic flows.
class Codec {
 public:
  /// Message schema version this build writes and accepts.
  static constexpr std::uint16_t kVersion = 1;
  /// Bytes of fixed header before the variable-length fields.
  static constexpr std::size_t kFixedHeaderBytes = 22;

  /// Registers the primitive payload types (kF64Tag..kI64Tag below).
  Codec();

  // Wire tags of the built-in primitive payloads (docs/PROTOCOL.md §5).
  static constexpr std::uint32_t kF64Tag = 0x01;
  static constexpr std::uint32_t kStringTag = 0x02;
  static constexpr std::uint32_t kBoolTag = 0x03;
  static constexpr std::uint32_t kI64Tag = 0x04;

  /// Registers payload type T under `tag`. `name` is diagnostic (metrics,
  /// PROTOCOL.md tables). Throws std::invalid_argument when the tag or the
  /// type is already registered — tags are protocol constants, not
  /// first-come-first-served.
  template <typename T>
  void register_type(std::uint32_t tag, std::string name,
                     std::function<void(WireWriter&, const T&)> encode,
                     std::function<T(WireReader&)> decode) {
    check_unregistered(tag, std::type_index(typeid(T)));
    Entry e;
    e.tag = tag;
    e.name = std::move(name);
    e.type = std::type_index(typeid(T));
    e.encode = [encode = std::move(encode)](WireWriter& w,
                                            const std::any& ref) {
      encode(w, std::any_cast<std::reference_wrapper<const T>>(ref).get());
    };
    e.raw_decode = decode;  // typed copy, consumed by decode_payload<T>
    e.deliver = [decode = std::move(decode)](Bus& bus,
                                             const DecodedMessage& m) {
      WireReader r(m.payload);
      T value = decode(r);
      // Strict: trailing bytes after the payload are malformed, not
      // ignorable padding — they would hide encoder/decoder skew.
      if (!r.ok() || r.remaining() != 0) return false;
      try {
        bus.publish(m.topic, value, m.source, m.time_s);
      } catch (const std::runtime_error&) {
        // The local bus speaks a different type on this topic. For local
        // publishers that is a programming error worth a throw; from the
        // wire it is untrusted input and must not take the bridge down.
        return false;
      }
      return true;
    };
    add_entry(std::move(e));
  }

  /// Encodes one typed message. Throws std::invalid_argument when T is not
  /// registered, std::length_error when topic/source exceed 64 KiB.
  template <typename T>
  std::vector<std::uint8_t> encode(const OutboundMessage& m,
                                   const T& payload) const {
    std::vector<std::uint8_t> out;
    if (!encode_any(m, std::any(std::cref(payload)),
                    std::type_index(typeid(T)), out)) {
      throw std::invalid_argument("mw::Codec: type not registered: " +
                                  std::string(typeid(T).name()));
    }
    return out;
  }

  /// Type-erased encode from a bus tap (`payload_ref` carries a
  /// std::reference_wrapper<const T>, exactly what Bus hands taps).
  /// Returns false — leaving `out` untouched — when `type` has no
  /// registered schema.
  bool encode_any(const OutboundMessage& m, const std::any& payload_ref,
                  std::type_index type, std::vector<std::uint8_t>& out) const;

  /// Structural decode: validates the fixed header and every length field
  /// against the buffer, copies nothing. std::nullopt on truncation or
  /// lengths pointing past the end. An unsupported version still decodes
  /// (see the file header).
  static std::optional<DecodedMessage> decode(
      std::span<const std::uint8_t> bytes) noexcept;
  static std::optional<DecodedMessage> decode(
      std::string_view bytes) noexcept {
    return decode(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size()));
  }

  /// Decodes the payload through its registered schema and publishes it on
  /// `bus` (string-keyed publish: the receiving bus interns the names into
  /// *its* tables). Never throws on wire input.
  DeliverResult deliver(Bus& bus, const DecodedMessage& m) const;

  /// Decodes a payload without a bus (tests, offline tooling). nullopt
  /// when the tag is unknown or the bytes are rejected.
  template <typename T>
  std::optional<T> decode_payload(std::uint32_t tag,
                                  std::string_view payload) const {
    const Entry* e = find_tag(tag);
    if (e == nullptr || e->type != std::type_index(typeid(T)))
      return std::nullopt;
    WireReader r(payload);
    const auto& decode =
        *std::any_cast<std::function<T(WireReader&)>>(&e->raw_decode);
    T value = decode(r);
    if (!r.ok() || r.remaining() != 0) return std::nullopt;
    return value;
  }

  bool knows(std::type_index type) const {
    return by_type_.count(type) != 0;
  }
  bool knows_tag(std::uint32_t tag) const { return find_tag(tag) != nullptr; }
  /// Diagnostic name for a tag ("" when unknown).
  std::string_view tag_name(std::uint32_t tag) const {
    const Entry* e = find_tag(tag);
    return e == nullptr ? std::string_view{} : std::string_view(e->name);
  }
  /// Wire tag for a registered type; throws std::invalid_argument else.
  std::uint32_t tag_for(std::type_index type) const;

 private:
  struct Entry {
    std::uint32_t tag = 0;
    std::string name;
    std::type_index type = std::type_index(typeid(void));
    std::function<void(WireWriter&, const std::any&)> encode;
    std::function<bool(Bus&, const DecodedMessage&)> deliver;
    std::any raw_decode;  ///< std::function<T(WireReader&)> for decode_payload
  };

  void check_unregistered(std::uint32_t tag, std::type_index type) const;
  void add_entry(Entry e);
  const Entry* find_tag(std::uint32_t tag) const;

  std::map<std::uint32_t, Entry> by_tag_;
  std::map<std::type_index, std::uint32_t> by_type_;
};

}  // namespace sesame::mw
