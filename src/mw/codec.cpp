#include "sesame/mw/codec.hpp"

namespace sesame::mw {

Codec::Codec() {
  // Primitive payloads every federation speaks (docs/PROTOCOL.md §5).
  register_type<double>(
      kF64Tag, "f64", [](WireWriter& w, const double& v) { w.f64(v); },
      [](WireReader& r) { return r.f64(); });
  register_type<std::string>(
      kStringTag, "string",
      [](WireWriter& w, const std::string& v) { w.str32(v); },
      [](WireReader& r) { return std::string(r.str32()); });
  register_type<bool>(
      kBoolTag, "bool", [](WireWriter& w, const bool& v) { w.boolean(v); },
      [](WireReader& r) { return r.boolean(); });
  register_type<std::int64_t>(
      kI64Tag, "i64", [](WireWriter& w, const std::int64_t& v) { w.i64(v); },
      [](WireReader& r) { return r.i64(); });
}

void Codec::check_unregistered(std::uint32_t tag, std::type_index type) const {
  if (by_tag_.count(tag) != 0) {
    throw std::invalid_argument("mw::Codec: wire tag already registered: " +
                                std::to_string(tag));
  }
  if (by_type_.count(type) != 0) {
    throw std::invalid_argument(
        "mw::Codec: payload type already registered: " +
        std::string(type.name()));
  }
}

void Codec::add_entry(Entry e) {
  by_type_.emplace(e.type, e.tag);
  by_tag_.emplace(e.tag, std::move(e));
}

const Codec::Entry* Codec::find_tag(std::uint32_t tag) const {
  const auto it = by_tag_.find(tag);
  return it == by_tag_.end() ? nullptr : &it->second;
}

std::uint32_t Codec::tag_for(std::type_index type) const {
  const auto it = by_type_.find(type);
  if (it == by_type_.end()) {
    throw std::invalid_argument("mw::Codec: type not registered: " +
                                std::string(type.name()));
  }
  return it->second;
}

bool Codec::encode_any(const OutboundMessage& m, const std::any& payload_ref,
                       std::type_index type,
                       std::vector<std::uint8_t>& out) const {
  const auto it = by_type_.find(type);
  if (it == by_type_.end()) return false;
  const Entry& e = by_tag_.at(it->second);
  WireWriter w;
  w.u16(kVersion);
  w.u32(e.tag);
  w.u64(m.seq);
  w.f64(m.time_s);
  w.str16(m.topic);
  w.str16(m.source);
  const std::size_t len_at = w.size();
  w.u32(0);  // payload length, patched below
  const std::size_t payload_at = w.size();
  e.encode(w, payload_ref);
  w.patch_u32(len_at, static_cast<std::uint32_t>(w.size() - payload_at));
  out = w.take();
  return true;
}

std::optional<DecodedMessage> Codec::decode(
    std::span<const std::uint8_t> bytes) noexcept {
  WireReader r(bytes);
  DecodedMessage m;
  m.version = r.u16();
  m.payload_tag = r.u32();
  m.seq = r.u64();
  m.time_s = r.f64();
  m.topic = r.str16();
  m.source = r.str16();
  m.payload = r.str32();
  // Strict framing: a message is exactly its header + payload. Trailing
  // bytes mean a length-field lie somewhere upstream.
  if (!r.ok() || r.remaining() != 0) return std::nullopt;
  return m;
}

DeliverResult Codec::deliver(Bus& bus, const DecodedMessage& m) const {
  if (m.version != kVersion) return DeliverResult::kUnsupportedVersion;
  const Entry* e = find_tag(m.payload_tag);
  if (e == nullptr) return DeliverResult::kUnknownTag;
  if (!e->deliver(bus, m)) return DeliverResult::kMalformedPayload;
  return DeliverResult::kDelivered;
}

}  // namespace sesame::mw
