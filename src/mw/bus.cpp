#include "sesame/mw/bus.hpp"

namespace sesame::mw {

TopicId Bus::intern_topic(std::string_view name) {
  if (const auto it = topic_index_.find(name); it != topic_index_.end()) {
    return TopicId(it->second);
  }
  const auto index = static_cast<std::uint32_t>(topic_names_.size());
  topic_names_.emplace_back(name);
  topic_index_.emplace(topic_names_.back(), index);
  topics_.emplace_back();
  return TopicId(index);
}

SourceId Bus::intern_source(std::string_view name) {
  if (const auto it = source_index_.find(name); it != source_index_.end()) {
    return SourceId(it->second);
  }
  const auto index = static_cast<std::uint32_t>(source_names_.size());
  source_names_.emplace_back(name);
  source_index_.emplace(source_names_.back(), index);
  return SourceId(index);
}

Subscription Bus::add_tap(TapFn tap) {
  const std::uint64_t id = next_sub_id_++;
  taps_.push_back(TapEntry{id, std::move(tap), epoch_, kLive});
  return Subscription(this, Subscription::Kind::kTap, TopicId(), id);
}

Subscription Bus::add_delivery_policy(DeliveryPolicy* policy) {
  if (policy == nullptr) {
    throw std::invalid_argument("Bus::add_delivery_policy: null policy");
  }
  const std::uint64_t id = next_sub_id_++;
  policies_.push_back(PolicyEntry{id, policy, epoch_, kLive});
  return Subscription(this, Subscription::Kind::kPolicy, TopicId(), id);
}

std::size_t Bus::drain_delayed() {
  if (delayed_.empty()) return 0;
  // Collect the due batch first: delivering may publish (and so enqueue)
  // further delayed messages, which must not be touched mid-iteration.
  std::vector<Delayed> due;
  for (auto it = delayed_.begin(); it != delayed_.end();) {
    if (--it->steps_left == 0) {
      due.push_back(std::move(*it));
      it = delayed_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto& d : due) d.deliver(*this);
  return due.size();
}

void Bus::restrict_publisher(std::string_view topic, std::string_view source) {
  const TopicId t = intern_topic(topic);
  const SourceId s = intern_source(source);
  topics_[t.index_].allowed_source = s.index_;
}

std::size_t Bus::subscriber_count(std::string_view topic) const {
  const auto it = topic_index_.find(topic);
  return it == topic_index_.end() ? 0 : subscriber_count(TopicId(it->second));
}

std::size_t Bus::subscriber_count(TopicId topic) const {
  std::size_t n = 0;
  for (const auto& e : topics_[topic.index_].subscribers) {
    if (e.died == kLive) ++n;
  }
  return n;
}

std::vector<JournalEntry> Bus::journal() const {
  // Unroll the ring oldest-first: [head, end) wrapped before [0, head).
  std::vector<JournalEntry> ordered;
  ordered.reserve(journal_.size());
  for (std::size_t i = journal_head_; i < journal_.size(); ++i) {
    ordered.push_back(journal_[i]);
  }
  for (std::size_t i = 0; i < journal_head_; ++i) {
    ordered.push_back(journal_[i]);
  }
  return ordered;
}

void Bus::set_journal_capacity(std::size_t capacity) {
  if (capacity == 0) {
    throw std::invalid_argument(
        "Bus::set_journal_capacity: capacity must be >= 1");
  }
  std::vector<JournalEntry> ordered = journal();
  if (ordered.size() > capacity) {
    const std::size_t evict = ordered.size() - capacity;
    journal_dropped_ += evict;
    ordered.erase(ordered.begin(),
                  ordered.begin() + static_cast<std::ptrdiff_t>(evict));
  }
  journal_ = std::move(ordered);
  journal_head_ = 0;
  journal_capacity_ = capacity;
}

void Bus::validate_subscriber_types(const TopicState& ts,
                                    std::type_index type,
                                    const char* type_name,
                                    std::string_view topic) const {
  for (const auto& e : ts.subscribers) {
    if (e.died != kLive) continue;  // unsubscribed, pending compaction
    if (e.type != type) {
      throw std::runtime_error("Bus: type mismatch on topic '" +
                               std::string(topic) + "': published " +
                               type_name +
                               " but a subscriber expects a different type");
    }
  }
}

void Bus::remove_registration(Subscription::Kind kind, TopicId topic,
                              std::uint64_t id) {
  switch (kind) {
    case Subscription::Kind::kSubscriber: {
      TopicState& ts = topics_[topic.index_];
      for (auto it = ts.subscribers.begin(); it != ts.subscribers.end();
           ++it) {
        if (it->id != id) continue;
        if (fanout_depth_ == 0) {
          ts.subscribers.erase(it);  // ordered: survivors keep their order
        } else {
          it->died = epoch_;  // still sees the in-flight message
          ts.has_tombstones = true;
          tombstones_pending_ = true;
        }
        return;
      }
      return;
    }
    case Subscription::Kind::kTap: {
      for (auto it = taps_.begin(); it != taps_.end(); ++it) {
        if (it->id != id) continue;
        if (fanout_depth_ == 0) {
          taps_.erase(it);
        } else {
          it->died = epoch_;
          taps_tombstoned_ = true;
          tombstones_pending_ = true;
        }
        return;
      }
      return;
    }
    case Subscription::Kind::kPolicy: {
      for (auto it = policies_.begin(); it != policies_.end(); ++it) {
        if (it->id != id) continue;
        if (fanout_depth_ == 0) {
          policies_.erase(it);
        } else {
          it->died = epoch_;
          policies_tombstoned_ = true;
          tombstones_pending_ = true;
        }
        return;
      }
      return;
    }
  }
}

void Bus::compact() {
  // Order-preserving sweeps: delivery order must survive unsubscribes.
  if (taps_tombstoned_) {
    std::erase_if(taps_, [](const TapEntry& t) { return t.died != kLive; });
    taps_tombstoned_ = false;
  }
  if (policies_tombstoned_) {
    std::erase_if(policies_,
                  [](const PolicyEntry& p) { return p.died != kLive; });
    policies_tombstoned_ = false;
  }
  for (TopicState& ts : topics_) {
    if (!ts.has_tombstones) continue;
    std::erase_if(ts.subscribers,
                  [](const Entry& e) { return e.died != kLive; });
    ts.has_tombstones = false;
  }
  tombstones_pending_ = false;
}

void Bus::set_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  for (TopicState& ts : topics_) {  // cached pointers belong to the old registry
    ts.instruments = TopicInstruments{};
    ts.instruments_ready = false;
  }
  rejected_counter_ =
      metrics_ != nullptr ? &metrics_->counter("sesame.mw.rejected_total")
                          : nullptr;
}

Bus::TopicInstruments& Bus::instruments(TopicId topic) {
  TopicState& ts = topics_[topic.index_];
  if (!ts.instruments_ready) {
    const obs::Labels labels{{"topic", topic_names_[topic.index_]}};
    ts.instruments.publish =
        &metrics_->counter("sesame.mw.publish_total", labels);
    ts.instruments.deliver =
        &metrics_->counter("sesame.mw.deliver_total", labels);
    ts.instruments.latency =
        &metrics_->histogram("sesame.mw.delivery_latency_seconds", labels);
    ts.instruments.dropped =
        &metrics_->counter("sesame.mw.fault_dropped_total", labels);
    ts.instruments.delayed =
        &metrics_->counter("sesame.mw.fault_delayed_total", labels);
    ts.instruments.duplicated =
        &metrics_->counter("sesame.mw.fault_duplicated_total", labels);
    ts.instruments_ready = true;
  }
  return ts.instruments;
}

}  // namespace sesame::mw
