#include "sesame/mw/bus.hpp"

namespace sesame::mw {

Subscription Bus::add_tap(TapFn tap) {
  const std::uint64_t id = next_sub_id_++;
  taps_.emplace(id, std::move(tap));
  return Subscription([this, id] { taps_.erase(id); });
}

void Bus::restrict_publisher(const std::string& topic,
                             const std::string& source) {
  acl_[topic] = source;
}

std::size_t Bus::subscriber_count(const std::string& topic) const {
  const auto it = subscribers_.find(topic);
  return it == subscribers_.end() ? 0 : it->second.size();
}

void Bus::set_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  instruments_.clear();  // cached pointers belong to the old registry
  rejected_counter_ =
      metrics_ != nullptr ? &metrics_->counter("sesame.mw.rejected_total")
                          : nullptr;
}

Bus::TopicInstruments& Bus::instruments(const std::string& topic) {
  auto [it, inserted] = instruments_.try_emplace(topic);
  if (inserted) {
    const obs::Labels labels{{"topic", topic}};
    it->second.publish = &metrics_->counter("sesame.mw.publish_total", labels);
    it->second.deliver = &metrics_->counter("sesame.mw.deliver_total", labels);
    it->second.latency =
        &metrics_->histogram("sesame.mw.delivery_latency_seconds", labels);
  }
  return it->second;
}

}  // namespace sesame::mw
