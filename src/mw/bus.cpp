#include "sesame/mw/bus.hpp"

namespace sesame::mw {

Subscription Bus::add_tap(TapFn tap) {
  const std::uint64_t id = next_sub_id_++;
  taps_.emplace(id, std::move(tap));
  return Subscription([this, id] { taps_.erase(id); });
}

void Bus::restrict_publisher(const std::string& topic,
                             const std::string& source) {
  acl_[topic] = source;
}

std::size_t Bus::subscriber_count(const std::string& topic) const {
  const auto it = subscribers_.find(topic);
  return it == subscribers_.end() ? 0 : it->second.size();
}

}  // namespace sesame::mw
