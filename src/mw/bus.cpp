#include "sesame/mw/bus.hpp"

namespace sesame::mw {

Subscription Bus::add_tap(TapFn tap) {
  const std::uint64_t id = next_sub_id_++;
  taps_.emplace(id, std::move(tap));
  return Subscription([this, id] { taps_.erase(id); });
}

Subscription Bus::add_delivery_policy(DeliveryPolicy* policy) {
  if (policy == nullptr) {
    throw std::invalid_argument("Bus::add_delivery_policy: null policy");
  }
  const std::uint64_t id = next_sub_id_++;
  policies_.emplace(id, policy);
  return Subscription([this, id] { policies_.erase(id); });
}

std::size_t Bus::drain_delayed() {
  if (delayed_.empty()) return 0;
  // Collect the due batch first: delivering may publish (and so enqueue)
  // further delayed messages, which must not be touched mid-iteration.
  std::vector<Delayed> due;
  for (auto it = delayed_.begin(); it != delayed_.end();) {
    if (--it->steps_left == 0) {
      due.push_back(std::move(*it));
      it = delayed_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto& d : due) d.deliver(*this);
  return due.size();
}

void Bus::restrict_publisher(const std::string& topic,
                             const std::string& source) {
  acl_[topic] = source;
}

std::size_t Bus::subscriber_count(const std::string& topic) const {
  const auto it = subscribers_.find(topic);
  return it == subscribers_.end() ? 0 : it->second.size();
}

void Bus::validate_subscriber_types(const std::string& topic,
                                    std::type_index type,
                                    const char* type_name) const {
  const auto it = subscribers_.find(topic);
  if (it == subscribers_.end()) return;
  for (const auto& s : it->second) {
    if (s.type != type) {
      throw std::runtime_error("Bus: type mismatch on topic '" + topic +
                               "': published " + type_name +
                               " but a subscriber expects a different type");
    }
  }
}

void Bus::set_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  instruments_.clear();  // cached pointers belong to the old registry
  rejected_counter_ =
      metrics_ != nullptr ? &metrics_->counter("sesame.mw.rejected_total")
                          : nullptr;
}

Bus::TopicInstruments& Bus::instruments(const std::string& topic) {
  auto [it, inserted] = instruments_.try_emplace(topic);
  if (inserted) {
    const obs::Labels labels{{"topic", topic}};
    it->second.publish = &metrics_->counter("sesame.mw.publish_total", labels);
    it->second.deliver = &metrics_->counter("sesame.mw.deliver_total", labels);
    it->second.latency =
        &metrics_->histogram("sesame.mw.delivery_latency_seconds", labels);
    it->second.dropped =
        &metrics_->counter("sesame.mw.fault_dropped_total", labels);
    it->second.delayed =
        &metrics_->counter("sesame.mw.fault_delayed_total", labels);
    it->second.duplicated =
        &metrics_->counter("sesame.mw.fault_duplicated_total", labels);
  }
  return it->second;
}

}  // namespace sesame::mw
