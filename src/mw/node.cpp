#include "sesame/mw/node.hpp"

#include <stdexcept>

namespace sesame::mw {

NodeHandle::NodeHandle(Bus& bus, std::string name)
    : bus_(&bus), name_(std::move(name)) {
  if (name_.empty()) throw std::invalid_argument("NodeHandle: empty name");
}

}  // namespace sesame::mw
