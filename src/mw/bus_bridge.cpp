#include "sesame/mw/bus_bridge.hpp"

#include <stdexcept>

namespace sesame::mw {

BusBridge::BusBridge(Bus& bus, const Codec& codec, BridgeConfig config)
    : bus_(bus),
      codec_(codec),
      config_(std::move(config)),
      framing_(config_.framing) {
  tap_ = bus_.add_tap([this](const MessageHeader& h, const std::any& payload,
                             std::type_index type) {
    on_local_publish(h, payload, type);
  });
}

bool BusBridge::topic_forwardable(std::string_view topic) const {
  if (config_.forward_prefixes.empty()) return true;
  for (const std::string& p : config_.forward_prefixes) {
    if (topic.substr(0, p.size()) == p) return true;
  }
  return false;
}

void BusBridge::on_local_publish(const MessageHeader& h,
                                 const std::any& payload,
                                 std::type_index type) {
  // Split horizon: never forward what the peer originated (this also
  // covers the bridge's own in-flight republication, whose source is
  // remembered before publish runs).
  if (remote_sources_.count(h.source_id.index()) != 0) {
    ++counters_.skipped_remote_origin;
    return;
  }
  if (!topic_forwardable(h.topic)) {
    ++counters_.skipped_filtered;
    return;
  }
  OutboundMessage m;
  m.topic = h.topic;
  m.source = h.source;
  m.seq = h.seq;
  m.time_s = h.time_s;
  encode_buf_.clear();
  if (!codec_.encode_any(m, payload, type, encode_buf_)) {
    ++counters_.skipped_unknown_type;
    return;
  }
  framing_.send_message(encode_buf_);
  ++counters_.forwarded;
}

std::vector<std::uint8_t> BusBridge::take_outbound() {
  std::vector<std::uint8_t> out = framing_.take_outbound();
  sync_metrics();
  return out;
}

void BusBridge::feed_inbound(std::span<const std::uint8_t> bytes) {
  framing_.feed(bytes, [this](std::span<const std::uint8_t> payload,
                              std::uint64_t /*link_seq*/) {
    const std::optional<DecodedMessage> m = Codec::decode(payload);
    if (!m.has_value()) {
      ++counters_.decode_errors;
      return;
    }
    // Remember the origin before publishing so the tap sees it as remote
    // while the republication fans out.
    remote_sources_.insert(bus_.intern_source(m->source).index());
    switch (codec_.deliver(bus_, *m)) {
      case DeliverResult::kDelivered:
        ++counters_.delivered;
        break;
      case DeliverResult::kUnsupportedVersion:
        ++counters_.version_rejects;
        break;
      case DeliverResult::kUnknownTag:
        ++counters_.skipped_unknown_type;
        break;
      case DeliverResult::kMalformedPayload:
        ++counters_.malformed_payloads;
        break;
    }
  });
  sync_metrics();
}

void BusBridge::set_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  mirrors_.clear();
  if (registry == nullptr) return;
  const obs::Labels labels{{"link", config_.name}};
  const LinkCounters& lc = framing_.counters();
  const auto mirror = [&](const char* name, const std::uint64_t& src) {
    mirrors_.emplace_back(&registry->counter(name, labels), &src);
  };
  mirror("sesame.wire.frames_tx_total", lc.frames_tx);
  mirror("sesame.wire.frames_rx_total", lc.frames_rx);
  mirror("sesame.wire.bytes_tx_total", lc.bytes_tx);
  mirror("sesame.wire.bytes_rx_total", lc.bytes_rx);
  mirror("sesame.wire.crc_errors_total", lc.crc_errors);
  mirror("sesame.wire.cobs_errors_total", lc.cobs_errors);
  mirror("sesame.wire.auth_failures_total", lc.auth_failures);
  mirror("sesame.wire.replays_rejected_total", lc.replays_rejected);
  mirror("sesame.wire.resyncs_total", lc.resyncs);
  mirror("sesame.wire.window_stalls_total", lc.window_stalls);
  mirror("sesame.wire.messages_forwarded_total", counters_.forwarded);
  mirror("sesame.wire.messages_delivered_total", counters_.delivered);
  mirror("sesame.wire.decode_errors_total", counters_.decode_errors);
  mirror("sesame.wire.malformed_payloads_total", counters_.malformed_payloads);
  mirror("sesame.wire.version_rejects_total", counters_.version_rejects);
  mirror("sesame.wire.unknown_type_total", counters_.skipped_unknown_type);
  sync_metrics();
}

void BusBridge::sync_metrics() {
  if (metrics_ == nullptr) return;
  for (auto& [counter, source] : mirrors_) {
    counter->raise_to(static_cast<double>(*source));
  }
}

void BusBridge::pump(BusBridge& a, BusBridge& b) {
  // A message exchange settles in a handful of rounds (message → release
  // credit → quiet); hundreds means the endpoints are ping-ponging
  // control frames, which is a protocol bug worth failing loudly on.
  for (int round = 0; round < 256; ++round) {
    const bool quiet_a = !a.has_outbound();
    const bool quiet_b = !b.has_outbound();
    if (quiet_a && quiet_b) return;
    if (!quiet_a) b.feed_inbound(a.take_outbound());
    if (!quiet_b) a.feed_inbound(b.take_outbound());
  }
  throw std::logic_error("mw::BusBridge::pump: link did not quiesce");
}

}  // namespace sesame::mw
