#include "sesame/mw/framing.hpp"

#include <array>
#include <cstring>
#include <stdexcept>

namespace sesame::mw {

void cobs_encode(std::span<const std::uint8_t> in,
                 std::vector<std::uint8_t>& out) {
  std::size_t code_pos = out.size();
  out.push_back(0);  // placeholder for the first code byte
  std::uint8_t code = 1;
  for (const std::uint8_t b : in) {
    if (b == 0) {
      out[code_pos] = code;
      code_pos = out.size();
      out.push_back(0);
      code = 1;
    } else {
      out.push_back(b);
      if (++code == 0xFF) {  // maximal group: restart without a zero
        out[code_pos] = code;
        code_pos = out.size();
        out.push_back(0);
        code = 1;
      }
    }
  }
  out[code_pos] = code;
  out.push_back(0);  // packet delimiter
}

bool cobs_decode(std::span<const std::uint8_t> in,
                 std::vector<std::uint8_t>& out) {
  if (in.empty()) return false;
  std::size_t i = 0;
  while (i < in.size()) {
    const std::uint8_t code = in[i];
    if (code == 0) return false;  // delimiters never appear inside a packet
    if (i + code > in.size()) return false;  // group runs past the end
    for (std::size_t j = 1; j < code; ++j) out.push_back(in[i + j]);
    i += code;
    if (code != 0xFF && i < in.size()) out.push_back(0);
  }
  return true;
}

std::uint32_t crc32_ieee(std::span<const std::uint8_t> bytes) noexcept {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t n = 0; n < 256; ++n) {
      std::uint32_t c = n;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[n] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::uint8_t b : bytes)
    crc = table[(crc ^ b) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

namespace {

constexpr std::size_t kFrameHeaderBytes = 9;  // type u8 + link seq u64
constexpr std::size_t kCrcBytes = 4;

std::uint64_t read_u64_le(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

std::uint16_t read_u16_le(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

void append_u16_le(std::vector<std::uint8_t>& v, std::uint16_t x) {
  v.push_back(static_cast<std::uint8_t>(x));
  v.push_back(static_cast<std::uint8_t>(x >> 8));
}

void append_u64_le(std::vector<std::uint8_t>& v, std::uint64_t x) {
  for (int i = 0; i < 8; ++i)
    v.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
}

}  // namespace

Framing::Framing(FramingConfig config) : config_(config) {
  if (config_.window == 0)
    throw std::invalid_argument("mw::Framing: window must be >= 1");
  if (config_.max_frame_bytes < 64)
    throw std::invalid_argument("mw::Framing: max_frame_bytes too small");
}

void Framing::start() {
  if (started_) return;
  started_ = true;
  std::vector<std::uint8_t> body;
  append_u16_le(body, config_.window);
  append_u16_le(body, kProtocolVersion);  // our *maximum* version
  emit_frame(FrameType::kInit, body);
}

void Framing::send_message(std::span<const std::uint8_t> payload) {
  if (payload.size() + kFrameHeaderBytes > config_.max_frame_bytes)
    throw std::length_error("mw::Framing: message exceeds max_frame_bytes");
  if (!established_ || send_credit_ == 0) {
    if (established_) ++counters_.window_stalls;
    pending_.emplace_back(payload.begin(), payload.end());
    return;
  }
  --send_credit_;
  ++counters_.messages_tx;
  emit_frame(FrameType::kMessage, payload);
}

void Framing::flush_pending() {
  while (!pending_.empty() && established_ && send_credit_ > 0) {
    --send_credit_;
    ++counters_.messages_tx;
    emit_frame(FrameType::kMessage, pending_.front());
    pending_.pop_front();
  }
}

std::vector<std::uint8_t> Framing::take_outbound() {
  return std::move(outbound_);
}

void Framing::emit_frame(FrameType type, std::span<const std::uint8_t> body) {
  std::vector<std::uint8_t> frame;
  frame.reserve(kFrameHeaderBytes + body.size() + kCrcBytes);
  frame.push_back(static_cast<std::uint8_t>(type));
  append_u64_le(frame, ++tx_seq_);
  frame.insert(frame.end(), body.begin(), body.end());
  if (config_.transform != nullptr) config_.transform->protect(frame);
  const std::uint32_t crc = crc32_ieee(frame);
  for (int i = 0; i < 4; ++i)
    frame.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  const std::size_t before = outbound_.size();
  cobs_encode(frame, outbound_);
  ++counters_.frames_tx;
  counters_.bytes_tx += outbound_.size() - before;
}

void Framing::feed(std::span<const std::uint8_t> bytes,
                   const MessageSink& sink) {
  counters_.bytes_rx += bytes.size();
  rx_buf_.insert(rx_buf_.end(), bytes.begin(), bytes.end());
  // Split on 0x00 delimiters; keep the trailing partial packet buffered.
  std::size_t begin = 0;
  for (std::size_t i = 0; i < rx_buf_.size(); ++i) {
    if (rx_buf_[i] != 0) continue;
    if (i > begin) {
      handle_packet(
          std::span<const std::uint8_t>(rx_buf_.data() + begin, i - begin),
          sink);
    }
    begin = i + 1;  // empty segments (back-to-back zeros) are benign
  }
  rx_buf_.erase(rx_buf_.begin(),
                rx_buf_.begin() + static_cast<std::ptrdiff_t>(begin));
  // A delimiter-free flood cannot grow the buffer without bound: drop it
  // once it exceeds any legal packet and wait for the next delimiter.
  const std::size_t cap = config_.max_frame_bytes + config_.max_frame_bytes / 128 + 64;
  if (rx_buf_.size() > cap) {
    rx_buf_.clear();
    ++counters_.malformed_frames;
    ++counters_.resyncs;
  }
}

void Framing::handle_packet(std::span<const std::uint8_t> packet,
                            const MessageSink& sink) {
  const auto reject = [this](std::uint64_t& counter) {
    ++counter;
    ++counters_.resyncs;
  };
  if (packet.size() > config_.max_frame_bytes + config_.max_frame_bytes / 254 + 2) {
    return reject(counters_.malformed_frames);
  }
  std::vector<std::uint8_t> frame;
  frame.reserve(packet.size());
  if (!cobs_decode(packet, frame)) return reject(counters_.cobs_errors);
  if (frame.size() < kFrameHeaderBytes + kCrcBytes)
    return reject(counters_.malformed_frames);
  // CRC sits outside the security transform: corruption is caught before
  // any crypto runs.
  const std::size_t body_end = frame.size() - kCrcBytes;
  std::uint32_t wire_crc = 0;
  for (int i = 0; i < 4; ++i)
    wire_crc |= static_cast<std::uint32_t>(frame[body_end + i]) << (8 * i);
  if (crc32_ieee({frame.data(), body_end}) != wire_crc)
    return reject(counters_.crc_errors);
  frame.resize(body_end);
  if (config_.transform != nullptr && !config_.transform->unprotect(frame))
    return reject(counters_.auth_failures);
  if (frame.size() < kFrameHeaderBytes)
    return reject(counters_.malformed_frames);

  const std::uint8_t type_byte = frame[0];
  const std::uint64_t seq = read_u64_le(frame.data() + 1);
  const std::uint8_t* body = frame.data() + kFrameHeaderBytes;
  const std::size_t body_len = frame.size() - kFrameHeaderBytes;

  // Replay protection: the link sequence must move forward. Init resets
  // the expectation (peer restarted its session).
  if (type_byte == static_cast<std::uint8_t>(FrameType::kInit)) {
    if (body_len != 4) return reject(counters_.malformed_frames);
    rx_last_seq_ = seq;
    const std::uint16_t peer_window = read_u16_le(body);
    const std::uint16_t peer_max_version = read_u16_le(body + 2);
    if (peer_window == 0) return reject(counters_.malformed_frames);
    negotiated_ = std::min(kProtocolVersion, peer_max_version);
    send_credit_ = peer_window;
    established_ = true;
    ++counters_.frames_rx;
    std::vector<std::uint8_t> resp;
    append_u16_le(resp, config_.window);
    append_u16_le(resp, negotiated_);
    emit_frame(FrameType::kInitResponse, resp);
    flush_pending();
    return;
  }
  if (seq <= rx_last_seq_) return reject(counters_.replays_rejected);
  if (seq != rx_last_seq_ + 1) ++counters_.seq_gaps;
  rx_last_seq_ = seq;

  switch (type_byte) {
    case static_cast<std::uint8_t>(FrameType::kInitResponse): {
      if (body_len != 4) return reject(counters_.malformed_frames);
      const std::uint16_t peer_window = read_u16_le(body);
      const std::uint16_t version = read_u16_le(body + 2);
      if (peer_window == 0) return reject(counters_.malformed_frames);
      // When both sides start() simultaneously, the peer's Init already
      // established the link; its InitResponse then only confirms the
      // version — re-granting the full window would double credit spent
      // since the Init.
      if (!established_) send_credit_ = peer_window;
      negotiated_ = std::min(kProtocolVersion, version);
      established_ = true;
      ++counters_.frames_rx;
      flush_pending();
      return;
    }
    case static_cast<std::uint8_t>(FrameType::kReleaseWindow): {
      if (body_len != 2) return reject(counters_.malformed_frames);
      const std::uint16_t count = read_u16_le(body);
      if (count == 0) return reject(counters_.malformed_frames);
      send_credit_ += count;
      ++counters_.frames_rx;
      flush_pending();
      return;
    }
    case static_cast<std::uint8_t>(FrameType::kMessage): {
      ++counters_.frames_rx;
      ++counters_.messages_rx;
      if (sink) sink({body, body_len}, seq);
      // Credit the peer back one Message frame. Per-message release keeps
      // the window honest; batching the credits is a future optimisation
      // (docs/PROTOCOL.md §4.3).
      std::vector<std::uint8_t> credit;
      append_u16_le(credit, 1);
      emit_frame(FrameType::kReleaseWindow, credit);
      return;
    }
    default:
      return reject(counters_.malformed_frames);
  }
}

}  // namespace sesame::mw
