#include "sesame/safedrones/uav_reliability.hpp"

#include <stdexcept>

namespace sesame::safedrones {

std::string reliability_level_name(ReliabilityLevel r) {
  switch (r) {
    case ReliabilityLevel::kHigh: return "High";
    case ReliabilityLevel::kMedium: return "Medium";
    case ReliabilityLevel::kLow: return "Low";
  }
  return "unknown";
}

ReliabilityMonitor::ReliabilityMonitor(ReliabilityConfig config)
    : config_(config), propulsion_(config_.propulsion), battery_(config_.battery),
      processor_(config_.processor), comms_(config_.comms) {
  if (!(config_.medium_threshold < config_.low_threshold &&
        config_.low_threshold <= config_.abort_threshold)) {
    throw std::invalid_argument(
        "ReliabilityMonitor: thresholds must satisfy medium < low <= abort");
  }
}

ReliabilityEstimate ReliabilityMonitor::evaluate(
    const TelemetrySnapshot& telemetry, double horizon_s) const {
  if (horizon_s < 0.0) {
    throw std::invalid_argument("ReliabilityMonitor::evaluate: negative horizon");
  }
  if (telemetry.battery_soc < 0.0 || telemetry.battery_soc > 1.0) {
    throw std::invalid_argument("ReliabilityMonitor::evaluate: soc out of [0,1]");
  }

  ReliabilityEstimate e;
  e.p_propulsion =
      propulsion_.failure_probability(horizon_s, telemetry.motors_failed);
  e.p_battery = battery_.failure_probability(
      battery_band_from_soc(telemetry.battery_soc), telemetry.battery_temp_c,
      horizon_s);
  e.p_processor =
      processor_.failure_probability(telemetry.processor_temp_c, horizon_s);
  e.p_comms = comms_.failure_probability(horizon_s);
  return compose(e.p_propulsion, e.p_battery, e.p_processor, e.p_comms);
}

ReliabilityEstimate ReliabilityMonitor::evaluate_prospective(
    const TelemetrySnapshot& telemetry, double horizon_s) const {
  if (horizon_s < 0.0) {
    throw std::invalid_argument(
        "ReliabilityMonitor::evaluate_prospective: negative horizon");
  }
  if (telemetry.battery_soc < 0.0 || telemetry.battery_soc > 1.0) {
    throw std::invalid_argument(
        "ReliabilityMonitor::evaluate_prospective: soc out of [0,1]");
  }
  const double p_propulsion =
      propulsion_.failure_probability(horizon_s, telemetry.motors_failed);
  const double p_processor =
      processor_.failure_probability(telemetry.processor_temp_c, horizon_s);
  const double p_comms = comms_.failure_probability(horizon_s);
  return compose(p_propulsion, 0.0, p_processor, p_comms);
}

ReliabilityEstimate ReliabilityMonitor::compose(double p_propulsion,
                                                double p_battery,
                                                double p_processor,
                                                double p_comms) const {
  ReliabilityEstimate e;
  e.p_propulsion = p_propulsion;
  e.p_battery = p_battery;
  e.p_processor = p_processor;
  e.p_comms = p_comms;

  // OR composition under independence.
  e.probability_of_failure = 1.0 - (1.0 - e.p_propulsion) * (1.0 - e.p_battery) *
                                       (1.0 - e.p_processor) * (1.0 - e.p_comms);

  if (e.probability_of_failure >= config_.low_threshold) {
    e.level = ReliabilityLevel::kLow;
  } else if (e.probability_of_failure >= config_.medium_threshold) {
    e.level = ReliabilityLevel::kMedium;
  } else {
    e.level = ReliabilityLevel::kHigh;
  }
  e.abort_recommended = e.probability_of_failure >= config_.abort_threshold;
  return e;
}

fta::FaultTree ReliabilityMonitor::design_time_tree(
    double mission_duration_s) const {
  if (mission_duration_s <= 0.0) {
    throw std::invalid_argument("design_time_tree: non-positive duration");
  }
  // Leaves capture nominal conditions; complex basic events delegate to the
  // subsystem models with t interpreted as mission time.
  auto propulsion = fta::make_complex("propulsion_loss", [this](double t) {
    return propulsion_.failure_probability(t, 0);
  });
  auto battery = fta::make_complex("battery_failure", [this](double t) {
    return battery_.failure_probability(BatteryBand::kHealthy,
                                        config_.battery.reference_temp_c, t);
  });
  auto processor = fta::make_complex("processor_failure", [this](double t) {
    return processor_.failure_probability(config_.processor.reference_temp_c, t);
  });
  auto comms = fta::make_complex("comms_loss", [this](double t) {
    return comms_.failure_probability(t);
  });
  return fta::FaultTree(
      "uav_failure",
      fta::make_or("uav_failure", {propulsion, battery, processor, comms}));
}

double ReliabilityMonitor::nominal_failure_probability(double t) const {
  return design_time_tree(std::max(t, 1e-9)).top_probability(t);
}

double fleet_mission_reliability(
    const std::vector<const ReliabilityMonitor*>& monitors,
    std::size_t min_capable, double t) {
  if (monitors.empty()) {
    throw std::invalid_argument("fleet_mission_reliability: empty fleet");
  }
  if (min_capable == 0 || min_capable > monitors.size()) {
    throw std::invalid_argument(
        "fleet_mission_reliability: min_capable out of [1, N]");
  }
  for (const auto* m : monitors) {
    if (!m) {
      throw std::invalid_argument("fleet_mission_reliability: null monitor");
    }
  }
  // The mission fails when more than N - min_capable UAVs fail, i.e. at
  // least k = N - min_capable + 1 of the per-UAV failure events occur.
  const std::size_t k = monitors.size() - min_capable + 1;
  std::vector<fta::NodePtr> uav_failures;
  uav_failures.reserve(monitors.size());
  for (std::size_t i = 0; i < monitors.size(); ++i) {
    const ReliabilityMonitor* monitor = monitors[i];
    uav_failures.push_back(fta::make_complex(
        "uav" + std::to_string(i + 1) + "_failure",
        [monitor](double time) {
          return monitor->nominal_failure_probability(time);
        }));
  }
  const auto mission_loss =
      fta::make_k_of_n("mission_loss", k, std::move(uav_failures));
  return 1.0 - mission_loss->probability(t);
}

}  // namespace sesame::safedrones
