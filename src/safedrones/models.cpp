#include "sesame/safedrones/models.hpp"

#include <cmath>
#include <stdexcept>

namespace sesame::safedrones {

std::size_t rotor_count(Airframe a) {
  switch (a) {
    case Airframe::kQuad: return 4;
    case Airframe::kHexa: return 6;
    case Airframe::kOcta: return 8;
  }
  throw std::invalid_argument("rotor_count: unknown airframe");
}

std::size_t tolerable_motor_failures(Airframe a, bool reconfiguration) {
  if (!reconfiguration) return 0;
  switch (a) {
    case Airframe::kQuad: return 0;
    case Airframe::kHexa: return 1;
    case Airframe::kOcta: return 2;
  }
  throw std::invalid_argument("tolerable_motor_failures: unknown airframe");
}

namespace {

markov::Ctmc build_propulsion_chain(const PropulsionConfig& cfg,
                                    std::size_t& failed_state) {
  if (cfg.motor_failure_rate < 0.0) {
    throw std::invalid_argument("PropulsionModel: negative failure rate");
  }
  const std::size_t rotors = rotor_count(cfg.airframe);
  const std::size_t tolerable =
      tolerable_motor_failures(cfg.airframe, cfg.reconfiguration);

  markov::CtmcBuilder b;
  // States: 0..tolerable motors lost (operational), then loss-of-control.
  std::vector<std::size_t> ok_states;
  for (std::size_t k = 0; k <= tolerable; ++k) {
    ok_states.push_back(b.add_state(std::to_string(k) + "_motors_lost"));
  }
  failed_state = b.add_state("loss_of_control");

  std::size_t active = rotors;
  for (std::size_t k = 0; k <= tolerable; ++k) {
    const double exit_rate = static_cast<double>(active) * cfg.motor_failure_rate;
    const std::size_t next = (k == tolerable) ? failed_state : ok_states[k + 1];
    b.add_transition(ok_states[k], next, exit_rate);
    // Reconfiguration sheds the opposite motor along with the failed one,
    // so two rotors leave service per tolerated failure.
    if (cfg.reconfiguration && active >= 2) active -= 2;
  }
  return b.build();
}

markov::Ctmc build_battery_chain(const BatteryModelConfig& cfg) {
  if (cfg.rate_healthy_to_low <= 0.0 || cfg.rate_low_to_critical <= 0.0 ||
      cfg.rate_critical_to_failed <= 0.0) {
    throw std::invalid_argument("BatteryModel: non-positive rate");
  }
  markov::CtmcBuilder b;
  const auto healthy = b.add_state("healthy");
  const auto low = b.add_state("low");
  const auto critical = b.add_state("critical");
  const auto failed = b.add_state("failed");
  b.add_transition(healthy, low, cfg.rate_healthy_to_low);
  b.add_transition(low, critical, cfg.rate_low_to_critical);
  b.add_transition(critical, failed, cfg.rate_critical_to_failed);
  return b.build();
}

}  // namespace

PropulsionModel::PropulsionModel(PropulsionConfig config)
    : config_(config), chain_(build_propulsion_chain(config_, failed_state_)) {}

double PropulsionModel::failure_probability(double t,
                                            std::size_t initial_failed) const {
  const std::size_t start =
      std::min(initial_failed, chain_.num_states() - 1);
  if (memo_.valid && memo_.t == t && memo_.initial_failed == start) {
    return memo_.probability;
  }
  std::vector<double> pi0(chain_.num_states(), 0.0);
  pi0[start] = 1.0;
  const double p = chain_.probability_in(pi0, t, {failed_state_});
  memo_ = {true, t, start, p};
  return p;
}

double PropulsionModel::mttf() const {
  if (config_.motor_failure_rate == 0.0) {
    throw std::runtime_error("PropulsionModel::mttf: zero failure rate");
  }
  return chain_.mean_time_to_absorption(0);
}

BatteryBand battery_band_from_soc(double soc) {
  if (soc <= 0.0) return BatteryBand::kFailed;
  if (soc < 0.25) return BatteryBand::kCritical;
  if (soc < 0.55) return BatteryBand::kLow;
  return BatteryBand::kHealthy;
}

BatteryModel::BatteryModel(BatteryModelConfig config)
    : config_(config), base_chain_(build_battery_chain(config_)) {}

markov::Ctmc BatteryModel::chain_at(double temperature_c) const {
  const double accel = std::exp(config_.temp_accel_per_c *
                                (temperature_c - config_.reference_temp_c));
  return base_chain_.scaled_rates(accel);
}

double BatteryModel::failure_probability(BatteryBand band, double temperature_c,
                                         double horizon_s) const {
  if (horizon_s < 0.0) {
    throw std::invalid_argument("BatteryModel: negative horizon");
  }
  if (band == BatteryBand::kFailed) return 1.0;
  const markov::Ctmc chain = chain_at(temperature_c);
  std::vector<double> pi0(4, 0.0);
  switch (band) {
    case BatteryBand::kHealthy: pi0[0] = 1.0; break;
    case BatteryBand::kLow: pi0[1] = 1.0; break;
    case BatteryBand::kCritical: pi0[2] = 1.0; break;
    case BatteryBand::kFailed: break;  // handled above
  }
  return chain.probability_in(pi0, horizon_s, {3});
}

BatteryRuntimeTracker::BatteryRuntimeTracker(BatteryModelConfig config)
    : model_(config) {}

void BatteryRuntimeTracker::observe_soc(double soc) {
  const BatteryBand band = battery_band_from_soc(soc);
  std::size_t observed;
  switch (band) {
    case BatteryBand::kHealthy: observed = 0; break;
    case BatteryBand::kLow: observed = 1; break;
    case BatteryBand::kCritical: observed = 2; break;
    case BatteryBand::kFailed: observed = 3; break;
  }
  if (observed == 3) {
    distribution_ = {0.0, 0.0, 0.0, 1.0};
    return;
  }
  // Dominant live (non-failed) state.
  std::size_t dominant = 0;
  for (std::size_t s = 1; s < 3; ++s) {
    if (distribution_[s] > distribution_[dominant]) dominant = s;
  }
  if (observed > dominant) {
    // Telemetry says we are worse than modelled: shift live mass into the
    // observed band. Failed mass stays (monotone estimate).
    const double live =
        distribution_[0] + distribution_[1] + distribution_[2];
    distribution_[0] = distribution_[1] = distribution_[2] = 0.0;
    distribution_[observed] = live;
  }
}

void BatteryRuntimeTracker::advance(double dt_s, double temperature_c) {
  if (dt_s < 0.0) {
    throw std::invalid_argument("BatteryRuntimeTracker: negative dt");
  }
  if (dt_s == 0.0) return;
  if (!cached_chain_ || cached_temp_c_ != temperature_c) {
    cached_chain_ = model_.chain_at(temperature_c);
    cached_temp_c_ = temperature_c;
  }
  distribution_ = cached_chain_->transient(distribution_, dt_s);
}

void BatteryRuntimeTracker::reset() { distribution_ = {1.0, 0.0, 0.0, 0.0}; }

ProcessorModel::ProcessorModel(ProcessorModelConfig config) : config_(config) {
  if (config_.base_rate < 0.0) {
    throw std::invalid_argument("ProcessorModel: negative base rate");
  }
}

double ProcessorModel::failure_probability(double temperature_c,
                                           double horizon_s) const {
  if (horizon_s < 0.0) {
    throw std::invalid_argument("ProcessorModel: negative horizon");
  }
  const double accel = std::exp(config_.temp_accel_per_c *
                                (temperature_c - config_.reference_temp_c));
  return 1.0 - std::exp(-config_.base_rate * accel * horizon_s);
}

CommsModel::CommsModel(CommsModelConfig config) : config_(config) {
  if (config_.failure_rate < 0.0) {
    throw std::invalid_argument("CommsModel: negative rate");
  }
}

double CommsModel::failure_probability(double horizon_s) const {
  if (horizon_s < 0.0) {
    throw std::invalid_argument("CommsModel: negative horizon");
  }
  return 1.0 - std::exp(-config_.failure_rate * horizon_s);
}

}  // namespace sesame::safedrones
