// UAV-level runtime reliability evaluation: the SafeDrones EDDI.
//
// Composes the subsystem Markov models into a fault tree
//   UAV_failure = OR(propulsion, battery, processor, comms)
// whose leaves are complex basic events parameterized by live telemetry
// (battery state of charge & temperature, motors lost, processor
// temperature). The monitor exposes the probability of failure over the
// remaining mission horizon and the discrete reliability level that the
// ConSert network consumes (High / Medium / Low, paper Fig. 1).
#pragma once

#include <memory>
#include <string>

#include "sesame/fta/fault_tree.hpp"
#include "sesame/safedrones/models.hpp"

namespace sesame::safedrones {

/// Discrete reliability guarantee levels (paper Fig. 1 Safety EDDI ConSert).
enum class ReliabilityLevel { kHigh, kMedium, kLow };

std::string reliability_level_name(ReliabilityLevel r);

/// Live telemetry consumed at every evaluation.
struct TelemetrySnapshot {
  double battery_soc = 1.0;
  double battery_temp_c = 25.0;
  double processor_temp_c = 40.0;
  std::size_t motors_failed = 0;
};

struct ReliabilityConfig {
  PropulsionConfig propulsion;
  BatteryModelConfig battery;
  ProcessorModelConfig processor;
  CommsModelConfig comms;
  /// P(fail) thresholds separating High/Medium/Low reliability.
  double medium_threshold = 0.30;
  double low_threshold = 0.70;
  /// Mission-abort threshold used by the Fig. 5 scenario (paper: 0.9).
  double abort_threshold = 0.90;
};

/// One evaluation result.
struct ReliabilityEstimate {
  double probability_of_failure = 0.0;  ///< over the evaluated horizon
  double p_propulsion = 0.0;
  double p_battery = 0.0;
  double p_processor = 0.0;
  double p_comms = 0.0;
  ReliabilityLevel level = ReliabilityLevel::kHigh;
  bool abort_recommended = false;
};

/// Runtime reliability monitor for one UAV.
class ReliabilityMonitor {
 public:
  explicit ReliabilityMonitor(ReliabilityConfig config = {});

  const ReliabilityConfig& config() const noexcept { return config_; }

  /// Evaluates the probability of UAV failure within `horizon_s` given the
  /// current telemetry.
  ReliabilityEstimate evaluate(const TelemetrySnapshot& telemetry,
                               double horizon_s) const;

  /// Like evaluate(), but with the battery term fixed at zero. Callers that
  /// track the cumulative battery probability separately (the EDDI's
  /// BatteryRuntimeTracker) discard evaluate()'s prospective battery term
  /// and re-compose() anyway, so this variant skips the battery chain
  /// build and transient solve on the per-tick hot path.
  ReliabilityEstimate evaluate_prospective(const TelemetrySnapshot& telemetry,
                                           double horizon_s) const;

  /// Composes externally computed subsystem probabilities (e.g. the
  /// cumulative battery probability of a BatteryRuntimeTracker) into a
  /// UAV-level estimate with this monitor's thresholds.
  ReliabilityEstimate compose(double p_propulsion, double p_battery,
                              double p_processor, double p_comms) const;

  /// The static design-time fault tree (nominal-condition leaves) for
  /// cut-set/importance analysis. The tree's complex basic events borrow
  /// this monitor's models: the monitor must outlive the returned tree.
  fta::FaultTree design_time_tree(double mission_duration_s) const;

  /// Probability of this UAV failing by mission time t under nominal
  /// conditions (the design_time_tree top event).
  double nominal_failure_probability(double t) const;

 private:
  ReliabilityConfig config_;
  PropulsionModel propulsion_;
  BatteryModel battery_;
  ProcessorModel processor_;
  CommsModel comms_;
};

/// Fleet-level mission reliability: the probability that the mission-level
/// ConSert outcome "mission cannot be fully completed" is avoided, i.e.
/// that at least `min_capable` of the fleet's UAVs are still operational
/// at mission time t. Built as a k-of-N fault tree over the per-UAV
/// nominal failure models (k = N - min_capable + 1 failures sink the
/// mission). Current per-UAV telemetry enters through per-monitor
/// `current` estimates when provided (same order as `monitors`).
///
/// Throws std::invalid_argument on an empty fleet or min_capable out of
/// [1, N].
double fleet_mission_reliability(
    const std::vector<const ReliabilityMonitor*>& monitors,
    std::size_t min_capable, double t);

}  // namespace sesame::safedrones
