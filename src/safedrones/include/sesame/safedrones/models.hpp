// SafeDrones subsystem reliability models (Aslansefat et al., IMBSA 2022).
//
// Each UAV subsystem is a small CTMC whose absorbing state is subsystem
// failure; the chains become *complex basic events* in the UAV-level fault
// tree (see uav_reliability.hpp). Models:
//  - Propulsion: motor-failure chain for quad/hexa/octa multirotors with
//    the reconfiguration behaviour of [Aslansefat et al., DoCEIS 2019] —
//    a tolerable motor loss degrades the vehicle instead of crashing it.
//  - Battery: state-of-charge band chain whose transition rates accelerate
//    with cell temperature (Arrhenius factor) — the Fig. 5 driver.
//  - Processor: soft-error-rate model with temperature acceleration
//    [Ottavi et al., IEEE D&T 2014].
#pragma once

#include <cstddef>
#include <optional>

#include "sesame/markov/ctmc.hpp"

namespace sesame::safedrones {

/// Supported airframe layouts and their tolerable motor losses under
/// reconfiguration.
enum class Airframe { kQuad, kHexa, kOcta };

/// Number of rotors of an airframe.
std::size_t rotor_count(Airframe a);

/// Motor failures the airframe survives when reconfiguration is enabled
/// (quad: 0, hexa: 1, octa: 2); without reconfiguration always 0.
std::size_t tolerable_motor_failures(Airframe a, bool reconfiguration);

struct PropulsionConfig {
  Airframe airframe = Airframe::kHexa;
  /// Per-motor failure rate (per second of flight). Typical small-UAV BLDC
  /// motors: ~1e-6 /s.
  double motor_failure_rate = 1e-6;
  /// When true, surviving a tolerable loss sheds the opposite motor and
  /// continues with reduced authority (the SafeDrones reconfiguration).
  bool reconfiguration = true;
};

/// Propulsion reliability model.
class PropulsionModel {
 public:
  explicit PropulsionModel(PropulsionConfig config);

  const PropulsionConfig& config() const noexcept { return config_; }
  const markov::Ctmc& chain() const noexcept { return chain_; }

  /// Probability the propulsion system has failed by time t, starting with
  /// `initial_failed` motors already lost (clamped to the chain's states).
  /// The last (t, initial_failed) result is memoised: runtime monitors call
  /// this every tick with a fixed horizon and a rarely-changing motor
  /// count, so steady state skips the transient solve entirely.
  double failure_probability(double t, std::size_t initial_failed = 0) const;

  /// Mean time to propulsion failure from the healthy state.
  double mttf() const;

 private:
  PropulsionConfig config_;
  markov::Ctmc chain_;
  std::size_t failed_state_;
  // Single-entry memo of the last transient solve. Mutable: a pure cache,
  // safe because each monitor instance is confined to one thread.
  struct Memo {
    bool valid = false;
    double t = 0.0;
    std::size_t initial_failed = 0;
    double probability = 0.0;
  };
  mutable Memo memo_;
};

/// Battery state-of-charge bands used by the degradation chain.
enum class BatteryBand { kHealthy, kLow, kCritical, kFailed };

/// Maps a measured state of charge onto a band.
BatteryBand battery_band_from_soc(double soc);

struct BatteryModelConfig {
  /// Base transition rates at reference temperature (per second):
  /// healthy->low, low->critical, critical->failed. Defaults calibrated so
  /// a healthy pack at nominal temperature carries negligible mission-scale
  /// risk while a thermally faulted pack (~70 C) reaches P(fail) = 0.9
  /// roughly 250 s after the fault — the Fig. 5 trajectory.
  double rate_healthy_to_low = 1.0 / 7200.0;
  double rate_low_to_critical = 1.0 / 1800.0;
  double rate_critical_to_failed = 1.0 / 900.0;
  /// Arrhenius parameters: rates scale by exp(temp_accel_per_c * (T - Tref)).
  double reference_temp_c = 25.0;
  double temp_accel_per_c = 0.07;  ///< ~2x per +10 C, Arrhenius-like
};

/// Temperature-aware battery degradation model.
class BatteryModel {
 public:
  explicit BatteryModel(BatteryModelConfig config = {});

  /// Probability the battery fails within `horizon_s`, given its current
  /// band and cell temperature.
  double failure_probability(BatteryBand band, double temperature_c,
                             double horizon_s) const;

  /// Builds the temperature-adjusted chain (exposed for analysis/tests).
  /// Derived by rate-scaling a base chain built once at construction, so a
  /// per-tick call costs a 4x4 scalar multiply instead of a builder pass.
  markov::Ctmc chain_at(double temperature_c) const;

 private:
  BatteryModelConfig config_;
  markov::Ctmc base_chain_;  ///< rates at reference temperature (accel = 1)
};

/// Stateful runtime battery tracker: carries the degradation chain's state
/// distribution forward through mission time, with rates following the
/// measured cell temperature. This yields the *cumulative* probability of
/// battery failure the paper plots in Fig. 5 — monotonically rising after
/// a thermal fault until the abort threshold is crossed.
///
/// Observed state-of-charge bands pin the distribution: when telemetry
/// shows a band worse than the tracker's dominant live state, all
/// non-failed probability mass shifts into the observed band (failed mass
/// is never reduced, keeping the estimate monotone).
class BatteryRuntimeTracker {
 public:
  explicit BatteryRuntimeTracker(BatteryModelConfig config = {});

  /// Incorporates a state-of-charge observation.
  void observe_soc(double soc);

  /// Advances mission time by dt seconds at the given cell temperature.
  void advance(double dt_s, double temperature_c);

  /// Cumulative probability that the battery has failed by now.
  double failure_probability() const noexcept { return distribution_[3]; }

  /// Probability distribution over {healthy, low, critical, failed}.
  const std::vector<double>& distribution() const noexcept {
    return distribution_;
  }

  /// Resets to a fresh pack (battery swap).
  void reset();

 private:
  BatteryModel model_;
  std::vector<double> distribution_{1.0, 0.0, 0.0, 0.0};
  // Temperature-keyed chain cache: cell temperature is constant between
  // thermal events, so successive advance() calls reuse one chain.
  std::optional<markov::Ctmc> cached_chain_;
  double cached_temp_c_ = 0.0;
};

struct ProcessorModelConfig {
  /// Base failure (SER-driven) rate at reference temperature, per second.
  double base_rate = 2e-7;
  double reference_temp_c = 25.0;
  double temp_accel_per_c = 0.04;
};

/// Processor soft-error reliability model.
class ProcessorModel {
 public:
  explicit ProcessorModel(ProcessorModelConfig config = {});

  /// Probability of processor failure within `horizon_s` at the given
  /// junction temperature.
  double failure_probability(double temperature_c, double horizon_s) const;

 private:
  ProcessorModelConfig config_;
};

/// Simple exponential communication-link model (loss of C2 link).
struct CommsModelConfig {
  double failure_rate = 5e-7;  ///< per second
};

class CommsModel {
 public:
  explicit CommsModel(CommsModelConfig config = {});
  double failure_probability(double horizon_s) const;

 private:
  CommsModelConfig config_;
};

}  // namespace sesame::safedrones
