#include "sesame/service/submission.hpp"

#include <stdexcept>
#include <utility>

#include "sesame/eddi/ode.hpp"
#include "sesame/platform/config_io.hpp"

namespace sesame::service {

namespace {

using eddi::ode::Value;

}  // namespace

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

Submission submission_from_json(const std::string& text) {
  const Value doc = eddi::ode::parse_json(text);
  if (!doc.is_object()) {
    throw std::runtime_error("submission: top level must be an object");
  }
  Submission s;
  for (const auto& [key, value] : doc.as_object()) {
    if (key == "tenant") {
      s.tenant = value.as_string();
    } else if (key == "preset") {
      s.preset = value.as_string();
    } else if (key == "config") {
      if (!value.is_object()) {
        throw std::runtime_error("submission: config must be an object");
      }
      s.config_json = value.to_json();
    } else if (key == "runs") {
      s.runs = static_cast<std::size_t>(value.as_number());
    } else if (key == "seed") {
      // Seeds travel as decimal strings (64-bit range; JSON numbers are
      // doubles), but plain numbers are accepted for hand-written docs.
      s.seed = value.is_string()
                   ? static_cast<std::uint64_t>(std::stoull(value.as_string()))
                   : static_cast<std::uint64_t>(value.as_number());
    } else if (key == "chaos") {
      s.chaos = value.as_bool();
    } else if (key == "collect_metrics") {
      s.collect_metrics = value.as_bool();
    } else {
      throw std::runtime_error("submission: unknown key '" + key + "'");
    }
  }
  if (s.tenant.empty()) {
    throw std::invalid_argument("submission: tenant must be non-empty");
  }
  if (s.runs == 0) {
    throw std::invalid_argument("submission: runs must be positive");
  }
  resolve(s);  // validate preset/config now, not on an executor later
  return s;
}

std::string submission_to_json(const Submission& s) {
  Value doc;
  doc["tenant"] = s.tenant;
  doc["preset"] = s.preset;
  if (!s.config_json.empty()) {
    doc["config"] = eddi::ode::parse_json(s.config_json);
  }
  doc["runs"] = s.runs;
  doc["seed"] = std::to_string(s.seed);
  doc["chaos"] = s.chaos;
  doc["collect_metrics"] = s.collect_metrics;
  return doc.to_json();
}

ResolvedCampaign resolve(const Submission& s) {
  campaign::ScenarioFactory factory =
      s.preset.empty()
          ? campaign::ScenarioFactory(
                campaign::ScenarioFactory::default_scenario())
          : campaign::ScenarioFactory::preset(s.preset);
  const bool preset_chaos = factory.chaos_enabled();
  if (!s.config_json.empty()) {
    // Same composition as campaign_cli: --config replaces the scenario
    // while the preset keeps contributing its chaos mode.
    platform::RunnerConfig scenario =
        platform::config_from_json(eddi::ode::parse_json(s.config_json));
    campaign::ScenarioFactory replaced(std::move(scenario));
    if (preset_chaos) replaced.enable_chaos();
    factory = std::move(replaced);
  }
  if (s.chaos && !factory.chaos_enabled()) factory.enable_chaos();

  ResolvedCampaign r{std::move(factory), {}, 0};
  r.config.runs = s.runs;
  r.config.seed = s.seed;
  r.config.jobs = 1;  // the service decides; never part of the identity
  r.config.collect_metrics = s.collect_metrics;

  // Digest the RESOLVED scenario, not the submission text: canonical
  // config JSON has sorted keys and every field, so formatting and
  // preset-vs-explicit-config spelling differences cannot split the cache.
  std::string canon = "preset=" + s.preset + '\n';
  canon += platform::config_to_json(r.factory.base()).to_json();
  canon += "\nchaos=";
  canon += r.factory.chaos_enabled() ? '1' : '0';
  canon += "\nruns=" + std::to_string(s.runs);
  canon += "\nseed=" + std::to_string(s.seed);
  canon += "\nmetrics=";
  canon += s.collect_metrics ? '1' : '0';
  r.digest = fnv1a64(canon);
  return r;
}

}  // namespace sesame::service
