#include "sesame/service/http.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <exception>
#include <stdexcept>
#include <utility>

#include "sesame/eddi/ode.hpp"

namespace sesame::service {

namespace {

using eddi::ode::Value;

const char* status_text(int code) {
  switch (code) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 429: return "Too Many Requests";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

HttpResponse error_response(int status, const std::string& message) {
  Value doc;
  doc["error"] = message;
  return HttpResponse{status, "application/json", doc.to_json()};
}

/// Parses "cursor=N" out of a query string; 0 when absent/garbled.
std::size_t parse_cursor(const std::string& query) {
  const std::string key = "cursor=";
  std::size_t pos = 0;
  while (pos < query.size()) {
    const std::size_t amp = query.find('&', pos);
    const std::string part =
        query.substr(pos, amp == std::string::npos ? amp : amp - pos);
    if (part.rfind(key, 0) == 0) {
      return static_cast<std::size_t>(std::atoll(part.c_str() + key.size()));
    }
    if (amp == std::string::npos) break;
    pos = amp + 1;
  }
  return 0;
}

Value status_to_json(const JobStatus& s) {
  Value doc;
  doc["job"] = s.id;
  doc["tenant"] = s.tenant;
  doc["state"] = job_state_name(s.state);
  doc["runs_total"] = s.runs_total;
  doc["runs_completed"] = s.runs_completed;
  doc["cache_hit"] = s.cache_hit;
  doc["digest"] = std::to_string(s.digest);
  if (!s.error.empty()) doc["error"] = s.error;
  return doc;
}

/// Splits "/api/v1/jobs/<id>[/suffix]"; returns false on a non-job path.
bool parse_job_path(const std::string& path, std::uint64_t& id,
                    std::string& suffix) {
  const std::string prefix = "/api/v1/jobs/";
  if (path.rfind(prefix, 0) != 0) return false;
  const std::string rest = path.substr(prefix.size());
  const std::size_t slash = rest.find('/');
  const std::string id_part =
      slash == std::string::npos ? rest : rest.substr(0, slash);
  if (id_part.empty() ||
      !std::all_of(id_part.begin(), id_part.end(), [](unsigned char c) {
        return std::isdigit(c) != 0;
      })) {
    return false;
  }
  id = std::strtoull(id_part.c_str(), nullptr, 10);
  suffix = slash == std::string::npos ? "" : rest.substr(slash + 1);
  return true;
}

}  // namespace

std::string serialize_response(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    status_text(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

std::optional<HttpRequest> HttpConnection::feed(const char* data,
                                                std::size_t n) {
  if (failed_) return std::nullopt;
  buffer_.append(data, n);
  const std::size_t head_end = buffer_.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    if (buffer_.size() > 64 * 1024) failed_ = true;  // runaway head
    return std::nullopt;
  }

  HttpRequest req;
  std::size_t line_start = 0;
  std::size_t line_end = buffer_.find("\r\n");
  {
    const std::string line = buffer_.substr(0, line_end);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
    if (sp2 == std::string::npos) {
      failed_ = true;
      return std::nullopt;
    }
    req.method = line.substr(0, sp1);
    std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::size_t q = target.find('?');
    if (q != std::string::npos) {
      req.query = target.substr(q + 1);
      target.resize(q);
    }
    req.path = std::move(target);
  }
  line_start = line_end + 2;
  while (line_start < head_end) {
    line_end = buffer_.find("\r\n", line_start);
    const std::string line = buffer_.substr(line_start, line_end - line_start);
    const std::size_t colon = line.find(':');
    if (colon != std::string::npos) {
      std::string key = line.substr(0, colon);
      std::transform(key.begin(), key.end(), key.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
      });
      std::size_t vstart = colon + 1;
      while (vstart < line.size() && line[vstart] == ' ') ++vstart;
      req.headers[key] = line.substr(vstart);
    }
    line_start = line_end + 2;
  }

  std::size_t content_length = 0;
  if (const auto it = req.headers.find("content-length");
      it != req.headers.end()) {
    content_length = static_cast<std::size_t>(std::atoll(it->second.c_str()));
  }
  const std::size_t body_start = head_end + 4;
  if (buffer_.size() - body_start < content_length) return std::nullopt;
  req.body = buffer_.substr(body_start, content_length);
  return req;
}

HttpResponse handle_request(CampaignService& service, const HttpRequest& req) {
  try {
    if (req.path == "/healthz") {
      return HttpResponse{200, "text/plain", "ok\n"};
    }
    if (req.path == "/metrics") {
      return HttpResponse{200, "text/plain; version=0.0.4",
                          service.metrics_prometheus()};
    }
    if (req.path == "/api/v1/campaigns") {
      if (req.method != "POST") {
        return error_response(405, "POST required");
      }
      Submission submission;
      try {
        submission = submission_from_json(req.body);
      } catch (const std::exception& e) {
        return error_response(400, e.what());
      }
      const SubmitOutcome out = service.submit(submission);
      if (!out.accepted) {
        const int status = out.reject_reason == "draining" ? 503 : 429;
        return error_response(status, out.reject_reason);
      }
      Value doc;
      doc["job"] = out.job_id;
      doc["state"] = job_state_name(service.status(out.job_id).state);
      doc["digest"] = std::to_string(service.status(out.job_id).digest);
      return HttpResponse{202, "application/json", doc.to_json()};
    }

    std::uint64_t id = 0;
    std::string suffix;
    if (parse_job_path(req.path, id, suffix)) {
      if (req.method != "GET") return error_response(405, "GET required");
      JobStatus status;
      try {
        status = service.status(id);
      } catch (const std::out_of_range&) {
        return error_response(404, "no such job");
      }
      if (suffix.empty()) {
        return HttpResponse{200, "application/json",
                            status_to_json(status).to_json()};
      }
      if (suffix == "events") {
        const std::size_t cursor = parse_cursor(req.query);
        const auto lines = service.events(id, cursor);
        Value doc;
        Value::Array events;
        for (const auto& line : lines) {
          events.push_back(eddi::ode::parse_json(line));
        }
        doc["events"] = Value(std::move(events));
        doc["next"] = cursor + lines.size();
        return HttpResponse{200, "application/json", doc.to_json()};
      }
      if (suffix == "report") {
        if (status.state != JobState::kCompleted) {
          return error_response(404, "report not ready (state " +
                                         std::string(job_state_name(
                                             status.state)) +
                                         ")");
        }
        // The byte-identity surface: report bytes verbatim, untouched.
        return HttpResponse{200, "application/json", service.report(id)};
      }
      return error_response(404, "unknown job resource");
    }
    return error_response(404, "unknown path");
  } catch (const std::exception& e) {
    return error_response(500, e.what());
  }
}

}  // namespace sesame::service
