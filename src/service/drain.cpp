#include "sesame/service/drain.hpp"

#include <csignal>
#include <stdexcept>

namespace sesame::service {

namespace {

std::atomic<bool> g_drain_requested{false};
std::atomic<bool> g_installed{false};

// std::signal handlers may only write lock-free atomics; a second signal
// after the latch is set restores the default disposition and re-raises,
// so an operator can still force-kill a wedged drain.
void on_signal(int signum) {
  if (g_drain_requested.exchange(true, std::memory_order_relaxed)) {
    std::signal(signum, SIG_DFL);
    std::raise(signum);
    return;
  }
}

static_assert(std::atomic<bool>::is_always_lock_free,
              "signal handler requires a lock-free latch");

using Handler = void (*)(int);
Handler g_prev_int = SIG_DFL;
Handler g_prev_term = SIG_DFL;

}  // namespace

DrainSignal::DrainSignal() {
  if (g_installed.exchange(true, std::memory_order_acq_rel)) {
    throw std::logic_error("DrainSignal already installed in this process");
  }
  g_drain_requested.store(false, std::memory_order_relaxed);
  g_prev_int = std::signal(SIGINT, &on_signal);
  g_prev_term = std::signal(SIGTERM, &on_signal);
}

DrainSignal::~DrainSignal() {
  std::signal(SIGINT, g_prev_int);
  std::signal(SIGTERM, g_prev_term);
  g_installed.store(false, std::memory_order_release);
}

bool DrainSignal::requested() const noexcept {
  return g_drain_requested.load(std::memory_order_relaxed);
}

const std::atomic<bool>* DrainSignal::flag() const noexcept {
  return &g_drain_requested;
}

void DrainSignal::reset() noexcept {
  g_drain_requested.store(false, std::memory_order_relaxed);
}

}  // namespace sesame::service
