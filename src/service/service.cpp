#include "sesame/service/service.hpp"

#include <algorithm>
#include <exception>
#include <limits>
#include <stdexcept>
#include <utility>

#include "sesame/campaign/report.hpp"
#include "sesame/eddi/ode.hpp"

namespace sesame::service {

namespace {

using eddi::ode::Value;

std::string event_line(Value doc) { return doc.to_json(); }

}  // namespace

const char* job_state_name(JobState s) noexcept {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kCompleted: return "completed";
    case JobState::kFailed: return "failed";
    case JobState::kDrained: return "drained";
  }
  return "unknown";
}

CampaignService::CampaignService(ServiceLimits limits) : limits_(limits) {
  if (limits_.executors == 0) limits_.executors = 1;
  if (limits_.jobs_per_campaign == 0) limits_.jobs_per_campaign = 1;
  executors_.reserve(limits_.executors);
  for (std::size_t i = 0; i < limits_.executors; ++i) {
    executors_.emplace_back([this] { executor_loop(); });
  }
}

CampaignService::~CampaignService() { drain(); }

SubmitOutcome CampaignService::submit(const Submission& submission) {
  // Resolution (and its validation errors) happens outside the lock.
  ResolvedCampaign resolved = resolve(submission);

  std::unique_lock<std::mutex> lock(mutex_);
  SubmitOutcome out;
  const auto reject = [&](const char* reason) {
    out.reject_reason = reason;
    metrics_
        .counter("sesame.service.rejections_total",
                 {{"reason", reason}, {"tenant", submission.tenant}})
        .inc();
    return out;
  };
  if (stop_.load(std::memory_order_relaxed)) return reject("draining");
  if (submission.runs > limits_.max_runs_per_campaign) {
    return reject("runs_cap");
  }
  metrics_
      .counter("sesame.service.submissions_total",
               {{"tenant", submission.tenant}})
      .inc();

  const std::string* cached = cache_find_locked(resolved.digest);
  if (cached == nullptr) {
    // Admission caps only gate work that needs an executor.
    if (queued_total_ >= limits_.max_queued) return reject("queue_full");
    if (queued_per_tenant_[submission.tenant] >=
        limits_.max_queued_per_tenant) {
      return reject("tenant_quota");
    }
  }

  auto job = std::make_unique<Job>();
  job->id = next_id_++;
  job->submission = submission;
  job->resolved = std::move(resolved);
  job->submitted_at = std::chrono::steady_clock::now();
  Job& j = *job;
  jobs_.emplace(j.id, std::move(job));

  {
    Value ev;
    ev["event"] = "queued";
    ev["job"] = j.id;
    ev["tenant"] = j.submission.tenant;
    ev["digest"] = std::to_string(j.resolved.digest);
    ev["runs"] = j.submission.runs;
    emit_locked(j, event_line(std::move(ev)));
  }

  if (cached != nullptr) {
    finish_cached_locked(j, *cached);
  } else {
    ++queued_total_;
    ++queued_per_tenant_[j.submission.tenant];
    refresh_queue_gauges_locked();
    cv_work_.notify_one();
  }
  out.accepted = true;
  out.job_id = j.id;
  return out;
}

CampaignService::Job* CampaignService::next_ready_job_locked() {
  Job* best = nullptr;
  std::size_t best_running = std::numeric_limits<std::size_t>::max();
  for (auto& [id, job] : jobs_) {  // ascending id: FIFO within a tenant
    if (job->state != JobState::kQueued) continue;
    const auto it = running_per_tenant_.find(job->submission.tenant);
    const std::size_t running =
        it == running_per_tenant_.end() ? 0 : it->second;
    if (running < best_running) {
      best = job.get();
      best_running = running;
    }
  }
  return best;
}

void CampaignService::executor_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_work_.wait(lock, [&] {
      return stop_.load(std::memory_order_relaxed) ||
             next_ready_job_locked() != nullptr;
    });
    if (stop_.load(std::memory_order_relaxed)) return;
    Job* job = next_ready_job_locked();
    if (job == nullptr) continue;
    run_job(lock, *job);
  }
}

void CampaignService::run_job(std::unique_lock<std::mutex>& lock, Job& job) {
  job.state = JobState::kRunning;
  --queued_total_;
  --queued_per_tenant_[job.submission.tenant];
  ++running_per_tenant_[job.submission.tenant];
  refresh_queue_gauges_locked();
  {
    Value ev;
    ev["event"] = "started";
    ev["job"] = job.id;
    emit_locked(job, event_line(std::move(ev)));
  }

  campaign::CampaignConfig config = job.resolved.config;
  config.jobs = limits_.jobs_per_campaign;
  config.stop = &stop_;
  config.on_run_complete = [this, &job](const campaign::RunOutcome& outcome,
                                        const obs::MetricsSnapshot* snap) {
    std::unique_lock<std::mutex> cb_lock(mutex_);
    ++job.runs_completed;
    metrics_
        .counter("sesame.service.runs_completed_total",
                 {{"tenant", job.submission.tenant}})
        .inc();
    if (!job.first_result_seen) {
      job.first_result_seen = true;
      const double s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - job.submitted_at)
                           .count();
      metrics_
          .histogram("sesame.service.submit_to_first_result_seconds",
                     {{"tenant", job.submission.tenant}},
                     obs::duration_buckets_s())
          .observe(s);
    }
    // Run-index stamps make this completion-order merge land on the same
    // gauge bits as the report's run-order merge.
    if (snap != nullptr) job.live.merge(*snap, outcome.run_index + 1);
    {
      Value ev;
      ev["event"] = "run";
      ev["job"] = job.id;
      ev["run"] = outcome.run_index;
      ev["completed"] = job.runs_completed;
      ev["total"] = job.submission.runs;
      ev["mission_complete"] = outcome.mission_complete;
      emit_locked(job, event_line(std::move(ev)));
    }
    if (limits_.metrics_stride != 0 && snap != nullptr &&
        job.runs_completed % limits_.metrics_stride == 0) {
      Value ev;
      ev["event"] = "metrics";
      ev["job"] = job.id;
      ev["completed"] = job.runs_completed;
      ev["metrics"] =
          eddi::ode::parse_json(campaign::metrics_json(job.live.snapshot()));
      emit_locked(job, event_line(std::move(ev)));
    }
  };

  lock.unlock();
  campaign::CampaignResult result;
  std::string error;
  try {
    result = campaign::run_campaign(job.resolved.factory, config);
  } catch (const std::exception& e) {
    error = e.what();
  } catch (...) {
    error = "unknown error";
  }
  lock.lock();

  --running_per_tenant_[job.submission.tenant];
  refresh_queue_gauges_locked();
  if (!error.empty()) {
    job.state = JobState::kFailed;
    job.error = error;
    metrics_
        .counter("sesame.service.jobs_failed_total",
                 {{"tenant", job.submission.tenant}})
        .inc();
    Value ev;
    ev["event"] = "failed";
    ev["job"] = job.id;
    ev["error"] = error;
    emit_locked(job, event_line(std::move(ev)));
  } else if (result.interrupted) {
    // Drain fired mid-campaign: the partial result is discarded (it is
    // not part of the byte-identity surface) and the submission goes back
    // to the spool via drain().
    job.state = JobState::kDrained;
    Value ev;
    ev["event"] = "drained";
    ev["job"] = job.id;
    ev["completed_runs"] = result.completed_runs;
    emit_locked(job, event_line(std::move(ev)));
  } else {
    job.state = JobState::kCompleted;
    job.report = campaign::campaign_json(result);
    if (config.collect_metrics) {
      Value ev;
      ev["event"] = "metrics";
      ev["job"] = job.id;
      ev["completed"] = job.runs_completed;
      ev["metrics"] =
          eddi::ode::parse_json(campaign::metrics_json(result.metrics));
      emit_locked(job, event_line(std::move(ev)));
    }
    cache_insert_locked(job.resolved.digest, job.report);
    metrics_
        .counter("sesame.service.jobs_completed_total",
                 {{"tenant", job.submission.tenant}})
        .inc();
    Value ev;
    ev["event"] = "completed";
    ev["job"] = job.id;
    ev["digest"] = std::to_string(job.resolved.digest);
    ev["report_bytes"] = job.report.size();
    emit_locked(job, event_line(std::move(ev)));
  }
  cv_state_.notify_all();
}

void CampaignService::emit_locked(Job& job, std::string line) {
  job.events.push_back(std::move(line));
}

void CampaignService::finish_cached_locked(Job& job,
                                           const std::string& report) {
  job.state = JobState::kCompleted;
  job.cache_hit = true;
  job.report = report;
  job.runs_completed = job.submission.runs;
  ++cache_hits_;
  metrics_
      .counter("sesame.service.cache_hits_total",
               {{"tenant", job.submission.tenant}})
      .inc();
  {
    Value ev;
    ev["event"] = "cache_hit";
    ev["job"] = job.id;
    ev["digest"] = std::to_string(job.resolved.digest);
    emit_locked(job, event_line(std::move(ev)));
  }
  Value ev;
  ev["event"] = "completed";
  ev["job"] = job.id;
  ev["digest"] = std::to_string(job.resolved.digest);
  ev["report_bytes"] = job.report.size();
  emit_locked(job, event_line(std::move(ev)));
  cv_state_.notify_all();
}

void CampaignService::cache_insert_locked(std::uint64_t digest,
                                          const std::string& report) {
  if (limits_.cache_entries == 0) return;
  if (const auto it = cache_.find(digest); it != cache_.end()) {
    cache_order_.erase(it->second.second);
    it->second.second = cache_order_.insert(cache_order_.end(), digest);
    return;  // identical bytes by the determinism contract
  }
  while (cache_.size() >= limits_.cache_entries) {
    cache_.erase(cache_order_.front());
    cache_order_.pop_front();
  }
  const auto pos = cache_order_.insert(cache_order_.end(), digest);
  cache_.emplace(digest, std::make_pair(report, pos));
  metrics_.gauge("sesame.service.cache_entries")
      .set(static_cast<double>(cache_.size()));
}

const std::string* CampaignService::cache_find_locked(std::uint64_t digest) {
  const auto it = cache_.find(digest);
  if (it == cache_.end()) return nullptr;
  cache_order_.erase(it->second.second);
  it->second.second = cache_order_.insert(cache_order_.end(), digest);
  return &it->second.first;
}

void CampaignService::refresh_queue_gauges_locked() {
  std::size_t running = 0;
  for (const auto& [tenant, n] : running_per_tenant_) running += n;
  metrics_.gauge("sesame.service.jobs_queued")
      .set(static_cast<double>(queued_total_));
  metrics_.gauge("sesame.service.jobs_running")
      .set(static_cast<double>(running));
}

JobStatus CampaignService::status(std::uint64_t job_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    throw std::out_of_range("campaign service: no job " +
                            std::to_string(job_id));
  }
  const Job& j = *it->second;
  JobStatus s;
  s.id = j.id;
  s.tenant = j.submission.tenant;
  s.state = j.state;
  s.runs_total = j.submission.runs;
  s.runs_completed = j.runs_completed;
  s.cache_hit = j.cache_hit;
  s.digest = j.resolved.digest;
  s.error = j.error;
  return s;
}

std::vector<std::string> CampaignService::events(std::uint64_t job_id,
                                                 std::size_t cursor) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    throw std::out_of_range("campaign service: no job " +
                            std::to_string(job_id));
  }
  const auto& events = it->second->events;
  std::vector<std::string> out;
  for (std::size_t i = cursor; i < events.size(); ++i) {
    out.push_back(events[i]);
  }
  return out;
}

std::string CampaignService::report(std::uint64_t job_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    throw std::out_of_range("campaign service: no job " +
                            std::to_string(job_id));
  }
  return it->second->report;
}

JobStatus CampaignService::wait(std::uint64_t job_id) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    throw std::out_of_range("campaign service: no job " +
                            std::to_string(job_id));
  }
  Job& j = *it->second;
  cv_state_.wait(lock, [&] {
    return j.state != JobState::kQueued && j.state != JobState::kRunning;
  });
  lock.unlock();
  return status(job_id);
}

std::string CampaignService::metrics_prometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return metrics_.render_prometheus();
}

std::size_t CampaignService::cache_hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_hits_;
}

std::vector<Submission> CampaignService::drain() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_.store(true, std::memory_order_relaxed);
    cv_work_.notify_all();
  }
  for (auto& t : executors_) {
    if (t.joinable()) t.join();
  }

  std::lock_guard<std::mutex> lock(mutex_);
  if (drained_) return {};
  drained_ = true;
  std::vector<Submission> spool;
  for (auto& [id, job] : jobs_) {  // ascending id: stable spool order
    if (job->state == JobState::kQueued) {
      job->state = JobState::kDrained;
      --queued_total_;
      --queued_per_tenant_[job->submission.tenant];
      Value ev;
      ev["event"] = "drained";
      ev["job"] = job->id;
      ev["completed_runs"] = std::size_t{0};
      emit_locked(*job, event_line(std::move(ev)));
    }
    if (job->state == JobState::kDrained) {
      spool.push_back(job->submission);
    }
  }
  refresh_queue_gauges_locked();
  cv_state_.notify_all();
  return spool;
}

}  // namespace sesame::service
