#include "sesame/service/wire.hpp"

#include <exception>
#include <stdexcept>
#include <utility>

#include "sesame/eddi/ode.hpp"

namespace sesame::service {

namespace {

using eddi::ode::Value;

std::uint64_t require_job(const Value& doc) {
  if (!doc.is_object() || doc.as_object().count("job") == 0 ||
      !doc.at("job").is_number()) {
    throw std::runtime_error("request needs a numeric \"job\" field");
  }
  return static_cast<std::uint64_t>(doc.at("job").as_number());
}

Value status_to_json(const JobStatus& s) {
  Value doc;
  doc["type"] = "status";
  doc["job"] = s.id;
  doc["tenant"] = s.tenant;
  doc["state"] = job_state_name(s.state);
  doc["runs_total"] = s.runs_total;
  doc["runs_completed"] = s.runs_completed;
  doc["cache_hit"] = s.cache_hit;
  doc["digest"] = std::to_string(s.digest);
  if (!s.error.empty()) doc["error"] = s.error;
  return doc;
}

/// Re-extracts the submission fields from a wire request document ("type"
/// stripped) so submission_from_json stays the single parser/validator.
Submission submission_from_request(const Value& doc) {
  Value clean;
  for (const auto& [key, value] : doc.as_object()) {
    if (key == "type") continue;
    clean[key] = value;
  }
  return submission_from_json(clean.to_json());
}

}  // namespace

WireSession::WireSession(CampaignService& service, mw::Bus& alert_bus,
                         std::string link_name, mw::FramingConfig framing)
    : service_(service),
      framing_(framing),
      monitor_(alert_bus, std::move(link_name)) {}

void WireSession::feed(std::span<const std::uint8_t> bytes) {
  framing_.feed(bytes, [this](std::span<const std::uint8_t> payload,
                              std::uint64_t /*seq*/) {
    handle(std::string(reinterpret_cast<const char*>(payload.data()),
                       payload.size()));
  });
}

void WireSession::send_json(const std::string& text) {
  framing_.send_message(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

void WireSession::handle(const std::string& text) {
  Value reply;
  try {
    const Value doc = eddi::ode::parse_json(text);
    const std::string& type = doc.at("type").as_string();

    if (type == "submit") {
      const Submission submission = submission_from_request(doc);
      const SubmitOutcome out = service_.submit(submission);
      if (out.accepted) {
        reply["type"] = "accepted";
        reply["job"] = out.job_id;
        reply["digest"] = std::to_string(service_.status(out.job_id).digest);
      } else {
        reply["type"] = "rejected";
        reply["reason"] = out.reject_reason;
      }
    } else if (type == "status") {
      reply = status_to_json(service_.status(require_job(doc)));
    } else if (type == "poll") {
      const std::uint64_t id = require_job(doc);
      std::size_t cursor = 0;
      if (doc.as_object().count("cursor") != 0 &&
          doc.at("cursor").is_number()) {
        cursor = static_cast<std::size_t>(doc.at("cursor").as_number());
      }
      const JobStatus status = service_.status(id);
      const auto lines = service_.events(id, cursor);
      reply["type"] = "events";
      reply["job"] = id;
      reply["next"] = cursor + lines.size();
      Value::Array events;
      for (const auto& line : lines) {
        events.push_back(eddi::ode::parse_json(line));
      }
      reply["events"] = Value(std::move(events));
      send_json(reply.to_json());
      // A completed job's poll also delivers the report: announce, then
      // ship the bytes as ONE raw frame (the byte-identity surface).
      if (status.state == JobState::kCompleted) {
        const std::string report = service_.report(id);
        Value follows;
        follows["type"] = "report_follows";
        follows["job"] = id;
        follows["bytes"] = report.size();
        send_json(follows.to_json());
        framing_.send_message(std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t*>(report.data()),
            report.size()));
      }
      return;
    } else {
      throw std::runtime_error("unknown request type: " + type);
    }
  } catch (const std::out_of_range&) {
    reply = Value();
    reply["type"] = "error";
    reply["error"] = "no such job";
  } catch (const std::exception& e) {
    reply = Value();
    reply["type"] = "error";
    reply["error"] = std::string(e.what());
  }
  send_json(reply.to_json());
}

WireClient::WireClient(mw::FramingConfig framing) : framing_(framing) {}

void WireClient::send_json(const std::string& text) {
  framing_.send_message(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

void WireClient::submit(const Submission& submission) {
  Value doc = eddi::ode::parse_json(submission_to_json(submission));
  doc["type"] = "submit";
  send_json(doc.to_json());
}

void WireClient::request_status(std::uint64_t job_id) {
  Value doc;
  doc["type"] = "status";
  doc["job"] = job_id;
  send_json(doc.to_json());
}

void WireClient::poll_events(std::uint64_t job_id, std::size_t cursor) {
  Value doc;
  doc["type"] = "poll";
  doc["job"] = job_id;
  doc["cursor"] = cursor;
  send_json(doc.to_json());
}

void WireClient::feed(std::span<const std::uint8_t> bytes) {
  framing_.feed(bytes, [this](std::span<const std::uint8_t> payload,
                              std::uint64_t /*seq*/) {
    std::string text(reinterpret_cast<const char*>(payload.data()),
                     payload.size());
    if (expect_report_) {
      report_ = std::move(text);
      report_received_ = true;
      expect_report_ = false;
      return;
    }
    // Peek for the report announcement; anything else is a response.
    try {
      const Value doc = eddi::ode::parse_json(text);
      if (doc.is_object() && doc.as_object().count("type") != 0 &&
          doc.at("type").is_string() &&
          doc.at("type").as_string() == "report_follows") {
        expect_report_ = true;
      }
    } catch (const std::exception&) {
      // Not JSON — surface it as a response; the caller decides.
    }
    responses_.push_back(std::move(text));
  });
}

std::string WireClient::pop_response() {
  if (responses_.empty()) throw std::out_of_range("no wire responses queued");
  std::string out = std::move(responses_.front());
  responses_.pop_front();
  return out;
}

}  // namespace sesame::service
