// CampaignService: the campaign-as-a-service execution core.
//
// ROADMAP item 2 ("mission server"): many operators drive the simulator
// concurrently, so campaign execution becomes a long-lived, multi-tenant
// service instead of a one-shot CLI. This class is the transport-agnostic
// core — the HTTP listener and the framed wire sessions (http.hpp,
// wire.hpp) are thin adapters over it, and tests drive it directly.
//
// Responsibilities:
//  - Admission control: global and per-tenant queue caps, a runs-per-
//    campaign ceiling, and a hard stop while draining. Rejections are
//    structured (SubmitOutcome), never exceptions, so transports map them
//    to protocol errors trivially.
//  - Per-tenant fair scheduling: executors pick the oldest queued job of
//    the tenant with the fewest campaigns currently running (ties: oldest
//    job wins). A tenant flooding the queue delays itself, not others.
//  - Progress streaming: every job keeps an append-only event log (JSON
//    lines — queued/started/run/metrics/completed/failed) that clients
//    poll with a cursor; metric snapshots are merged run-stamped (see
//    obs::MetricsRegistry::merge) so the stream converges on the exact
//    merged bits of the final report regardless of completion order.
//  - Result cache: completed report bytes keyed by the submission's
//    resolved digest (submission.hpp), LRU-bounded. Repeat submissions
//    complete at submit time without touching an executor.
//  - Graceful drain: stop claiming queued work, interrupt running
//    campaigns at run granularity (campaign::CampaignConfig::stop), join
//    executors, and hand every unfinished submission back for spooling.
//
// Byte-identity contract: a completed job's report() is exactly
// campaign::campaign_json() of the same (scenario, runs, seed) — the
// bytes campaign_cli --json writes for that campaign. The service never
// rewrites, reformats or annotates report bytes; service-side metrics
// live in a separate registry exposed via metrics_prometheus().
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sesame/obs/metrics.hpp"
#include "sesame/service/submission.hpp"

namespace sesame::service {

struct ServiceLimits {
  std::size_t executors = 2;          ///< concurrent campaigns
  std::size_t jobs_per_campaign = 1;  ///< worker threads inside a campaign
  std::size_t max_queued = 64;        ///< global admission cap
  std::size_t max_queued_per_tenant = 16;
  std::size_t max_runs_per_campaign = 4096;
  std::size_t cache_entries = 32;  ///< completed-report LRU size (0 = off)
  /// Emit a "metrics" stream event every this many completed runs (and
  /// always at completion). 0 disables interim metric streaming.
  std::size_t metrics_stride = 8;
};

enum class JobState {
  kQueued,     ///< admitted, waiting for an executor
  kRunning,    ///< on an executor
  kCompleted,  ///< report bytes available
  kFailed,     ///< scenario raised; see JobStatus::error
  kDrained,    ///< interrupted by drain; submission handed back for spool
};

const char* job_state_name(JobState s) noexcept;

struct SubmitOutcome {
  bool accepted = false;
  std::uint64_t job_id = 0;      ///< valid when accepted
  std::string reject_reason;     ///< "draining" | "queue_full" |
                                 ///< "tenant_quota" | "runs_cap"
};

struct JobStatus {
  std::uint64_t id = 0;
  std::string tenant;
  JobState state = JobState::kQueued;
  std::size_t runs_total = 0;
  std::size_t runs_completed = 0;
  bool cache_hit = false;
  std::uint64_t digest = 0;
  std::string error;  ///< non-empty iff kFailed
};

class CampaignService {
 public:
  explicit CampaignService(ServiceLimits limits = {});
  /// Drains (discarding the returned spool — daemons call drain() first).
  ~CampaignService();

  CampaignService(const CampaignService&) = delete;
  CampaignService& operator=(const CampaignService&) = delete;

  /// Admission + enqueue. A digest already in the result cache completes
  /// the job synchronously (cache_hit). Throws only what resolve() throws
  /// — i.e. the submission itself is malformed; capacity problems are
  /// reported in the outcome.
  SubmitOutcome submit(const Submission& submission);

  /// Throws std::out_of_range for an unknown id.
  JobStatus status(std::uint64_t job_id) const;

  /// Event-log lines from index `cursor` on (pass the previous call's
  /// cursor + lines consumed). Never blocks.
  std::vector<std::string> events(std::uint64_t job_id,
                                  std::size_t cursor) const;

  /// Completed report bytes; empty until kCompleted.
  std::string report(std::uint64_t job_id) const;

  /// Blocks until the job leaves kQueued/kRunning (test + CLI helper).
  JobStatus wait(std::uint64_t job_id);

  /// Service-side metrics (per-tenant submission/run counters, queue
  /// gauges, latency histograms) in Prometheus text format.
  std::string metrics_prometheus() const;

  /// Graceful drain: reject new work, stop queued jobs from starting,
  /// interrupt running campaigns at run granularity, join all executors,
  /// and return the submissions of every job that did not complete —
  /// queued and interrupted alike, in job-id order — for spooling.
  /// Idempotent; later calls return an empty list.
  std::vector<Submission> drain();

  bool draining() const noexcept {
    return stop_.load(std::memory_order_relaxed);
  }
  const ServiceLimits& limits() const noexcept { return limits_; }
  std::size_t cache_hits() const;

 private:
  struct Job {
    std::uint64_t id = 0;
    Submission submission;
    ResolvedCampaign resolved;
    JobState state = JobState::kQueued;
    std::size_t runs_completed = 0;
    bool cache_hit = false;
    std::string error;
    std::string report;             ///< campaign_json bytes when completed
    std::deque<std::string> events; ///< append-only JSON lines
    obs::MetricsRegistry live;      ///< run-stamped merged stream state
    std::chrono::steady_clock::time_point submitted_at;
    bool first_result_seen = false;
  };

  void executor_loop();
  Job* next_ready_job_locked();
  void emit_locked(Job& job, std::string line);
  void finish_cached_locked(Job& job, const std::string& report);
  void run_job(std::unique_lock<std::mutex>& lock, Job& job);
  void cache_insert_locked(std::uint64_t digest, const std::string& report);
  const std::string* cache_find_locked(std::uint64_t digest);
  void refresh_queue_gauges_locked();

  ServiceLimits limits_;
  mutable std::mutex mutex_;
  std::condition_variable cv_work_;   ///< executors wait here
  std::condition_variable cv_state_;  ///< wait() callers wait here
  std::atomic<bool> stop_{false};     ///< drain latch; campaigns poll it
  bool drained_ = false;              ///< executors joined
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, std::unique_ptr<Job>> jobs_;
  std::map<std::string, std::size_t> queued_per_tenant_;
  std::map<std::string, std::size_t> running_per_tenant_;
  std::size_t queued_total_ = 0;
  // LRU result cache: digest -> report bytes; recency list front = oldest.
  std::map<std::uint64_t, std::pair<std::string, std::list<std::uint64_t>::iterator>>
      cache_;
  std::list<std::uint64_t> cache_order_;
  std::size_t cache_hits_ = 0;
  obs::MetricsRegistry metrics_;
  std::vector<std::thread> executors_;
};

}  // namespace sesame::service
