// Minimal HTTP/1.1 adapter for the campaign service (docs/SERVICE.md).
//
// Just enough protocol for `curl` and the campaign_submit client — no
// chunked encoding, no keep-alive pipelining games, no TLS. Parsing is
// incremental and transport-agnostic: the daemon feeds whatever bytes the
// socket produced into an HttpConnection and writes back the serialized
// response; tests feed strings. Routes:
//
//   POST /api/v1/campaigns        submission JSON -> 202 {job,...} or
//                                 400 (malformed) / 429 (capacity) /
//                                 503 (draining)
//   GET  /api/v1/jobs/<id>        status JSON
//   GET  /api/v1/jobs/<id>/events?cursor=N
//                                 {"events": [...], "next": M}
//   GET  /api/v1/jobs/<id>/report RAW report bytes (exactly the bytes
//                                 campaign_cli --json writes — the
//                                 byte-identity surface; never reformatted)
//   GET  /metrics                 service registry, Prometheus text
//   GET  /healthz                 200 "ok"
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>

#include "sesame/service/service.hpp"

namespace sesame::service {

struct HttpRequest {
  std::string method;
  std::string path;    ///< without the query string
  std::string query;   ///< bytes after '?' (may be empty)
  std::map<std::string, std::string> headers;  ///< keys lower-cased
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

/// Serializes a response (HTTP/1.1, explicit Content-Length, close).
std::string serialize_response(const HttpResponse& response);

/// One connection's incremental request parser. feed() returns a complete
/// request once the head + Content-Length body have arrived, nullopt while
/// more bytes are needed. A malformed head sets failed() — close the
/// connection. One request per connection (Connection: close semantics).
class HttpConnection {
 public:
  std::optional<HttpRequest> feed(const char* data, std::size_t n);
  bool failed() const noexcept { return failed_; }

 private:
  std::string buffer_;
  bool failed_ = false;
};

/// Routes one request onto the service. Never throws: errors become 4xx /
/// 5xx JSON bodies ({"error": ...}).
HttpResponse handle_request(CampaignService& service, const HttpRequest& req);

}  // namespace sesame::service
