// Campaign submissions: the JSON unit of work the campaign service accepts
// over HTTP and the framed wire transport (docs/SERVICE.md).
//
// A submission names WHAT to run — (preset, scenario config, runs, seed,
// chaos) — never HOW to run it: worker counts, executor placement and
// queueing are the service's concern, and none of them may influence the
// produced report (the byte-identity contract). The same separation drives
// the result-cache key: two submissions that resolve to the same scenario
// bits, run count and seed produce the same report bytes by construction,
// so the cache digest covers the *resolved* canonical scenario form — not
// the submission text — plus the preset name, run count and seed.
// Formatting differences and config key order cannot split the cache.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "sesame/campaign/campaign.hpp"
#include "sesame/campaign/scenario_factory.hpp"

namespace sesame::service {

/// One campaign submission. Parsed from the client's JSON document; also
/// re-serialized verbatim into the drain spool, so every field must
/// round-trip through submission_to_json/submission_from_json.
struct Submission {
  std::string tenant = "default";  ///< fair-scheduling + quota identity
  /// Scenario preset name (campaign::ScenarioFactory::preset); empty uses
  /// the default scenario.
  std::string preset;
  /// Optional scenario configuration document (platform::config_io
  /// format). Like campaign_cli's --config, it REPLACES the preset's base
  /// scenario; the preset still contributes its chaos mode. Empty = none.
  std::string config_json;
  std::size_t runs = 16;
  std::uint64_t seed = 1;
  bool chaos = false;  ///< force chaos mode on top of preset/config
  bool collect_metrics = true;
};

/// Parses a submission document. Throws std::runtime_error on malformed
/// JSON or unknown keys (a typo must not silently become a default) and
/// std::invalid_argument on structurally bad values (runs == 0, unknown
/// preset — resolution is attempted so rejection happens at submit time,
/// not minutes later on an executor).
Submission submission_from_json(const std::string& text);

/// Canonical serialization (sorted keys, defaults included) used by the
/// drain spool and the tests.
std::string submission_to_json(const Submission& s);

/// A submission resolved against presets/config into runnable form.
struct ResolvedCampaign {
  campaign::ScenarioFactory factory{platform::RunnerConfig{}};
  campaign::CampaignConfig config;  ///< jobs left 1; the service sets it
  /// Cache key: FNV-1a 64 over (preset, canonical resolved scenario JSON,
  /// chaos profile, runs, seed, collect_metrics).
  std::uint64_t digest = 0;
};

/// Resolves preset + config overrides and computes the cache digest.
/// Throws like submission_from_json on bad presets/configs.
ResolvedCampaign resolve(const Submission& s);

/// FNV-1a 64-bit (exposed for tests and the bench's digest checks).
std::uint64_t fnv1a64(std::string_view bytes) noexcept;

}  // namespace sesame::service
