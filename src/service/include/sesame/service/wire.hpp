// Framed wire transport for the campaign service (docs/SERVICE.md §wire).
//
// Reuses the mw::Framing stack (COBS + CRC32 + replay windows + flow
// control — PR 6's transport) so a submitter without HTTP tooling, or one
// already on the SESAME serial/socket fabric, can drive the service over
// the same link discipline the bus federation uses. One WireSession per
// connection, byte-oriented and transport-agnostic like Framing itself.
//
// Message protocol (one JSON document per Message frame):
//   client -> server
//     {"type":"submit", ...submission fields (submission.hpp)...}
//     {"type":"status", "job": id}
//     {"type":"poll",   "job": id, "cursor": n}
//   server -> client
//     {"type":"accepted", "job": id, "digest": "..."}
//     {"type":"rejected", "reason": "..."} | {"type":"error", "error":...}
//     {"type":"status", ...JobStatus fields...}
//     {"type":"events", "job": id, "next": m, "events": [...]}
//     {"type":"report_follows", "job": id, "bytes": n}
//       ...followed by ONE RAW frame carrying exactly n report bytes.
//
// The raw report frame is the byte-identity surface: the report is never
// re-encoded into a JSON string (escaping would still round-trip, but raw
// framing makes "the bytes on the wire ARE campaign_cli's bytes" directly
// auditable) — the client hashes/writes the frame payload verbatim.
//
// Security (ROADMAP item 1 leftover): every session owns a
// security::WireMonitor over its framing counters. The owner polls
// poll_security(now_s) after feeding inbound bytes; tampered or replayed
// frames become IDS alerts on the daemon's bus, where a SecurityEddi
// consumes them (wire.cpp never drops evidence silently).
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <vector>

#include "sesame/mw/bus.hpp"
#include "sesame/mw/framing.hpp"
#include "sesame/security/wire_monitor.hpp"
#include "sesame/service/service.hpp"

namespace sesame::service {

/// Server side of one wire connection.
class WireSession {
 public:
  /// `service` executes submissions; `alert_bus` receives the session's
  /// wire-security alerts (both borrowed, must outlive the session).
  WireSession(CampaignService& service, mw::Bus& alert_bus,
              std::string link_name, mw::FramingConfig framing = {});

  void start() { framing_.start(); }
  bool established() const noexcept { return framing_.established(); }

  /// Wires the session's monitor into a metrics/trace bundle (owned by
  /// the daemon's listener thread; see WireMonitor::set_observability).
  void set_observability(obs::Observability* o) noexcept {
    monitor_.set_observability(o);
  }

  /// Consumes inbound wire bytes; responses queue on take_outbound().
  void feed(std::span<const std::uint8_t> bytes);
  std::vector<std::uint8_t> take_outbound() {
    return framing_.take_outbound();
  }
  bool has_outbound() const noexcept { return framing_.has_outbound(); }

  /// Polls the link's counters into the wire monitor (call after feed).
  void poll_security(double now_s) {
    monitor_.observe(framing_.counters(), now_s);
  }
  const mw::LinkCounters& counters() const noexcept {
    return framing_.counters();
  }

 private:
  void handle(const std::string& text);
  void send_json(const std::string& text);

  CampaignService& service_;
  mw::Framing framing_;
  security::WireMonitor monitor_;
};

/// Client side: a thin request/response pump for campaign_submit and the
/// loopback tests. Single-threaded; the owner moves bytes.
class WireClient {
 public:
  explicit WireClient(mw::FramingConfig framing = {});

  void start() { framing_.start(); }
  bool established() const noexcept { return framing_.established(); }

  void submit(const Submission& submission);
  void request_status(std::uint64_t job_id);
  void poll_events(std::uint64_t job_id, std::size_t cursor);

  void feed(std::span<const std::uint8_t> bytes);
  std::vector<std::uint8_t> take_outbound() {
    return framing_.take_outbound();
  }
  bool has_outbound() const noexcept { return framing_.has_outbound(); }

  /// JSON documents received, oldest first (consume with pop_response).
  bool has_response() const noexcept { return !responses_.empty(); }
  std::string pop_response();

  /// Raw report bytes (set once the frame after "report_follows" lands).
  const std::string& report() const noexcept { return report_; }
  bool report_received() const noexcept { return report_received_; }

 private:
  void send_json(const std::string& text);

  mw::Framing framing_;
  std::deque<std::string> responses_;
  std::string report_;
  bool expect_report_ = false;
  bool report_received_ = false;
};

}  // namespace sesame::service
