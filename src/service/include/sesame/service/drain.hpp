// Graceful-drain signal latch shared by campaign_cli and the campaign
// service daemon.
//
// SIGINT/SIGTERM must not kill a campaign mid-run and leave a truncated
// report on disk (the old campaign_cli behaviour) or orphan queued service
// jobs. Both executables instead install a DrainSignal: the handler only
// flips a lock-free atomic (the sole thing async-signal-safe code may do),
// and the worker loops poll it through campaign::CampaignConfig::stop /
// CampaignService::drain — runs finish at run granularity, reports are
// either complete or absent, never partial.
#pragma once

#include <atomic>

namespace sesame::service {

/// RAII SIGINT/SIGTERM latch. Installs handlers on construction, restores
/// the previous handlers on destruction. A second signal while draining
/// re-raises the default action, so a stuck drain can still be killed by
/// pressing Ctrl-C twice.
///
/// The latch is process-global (signal handlers cannot carry state), so
/// only one DrainSignal may be live at a time; a second concurrent
/// instance throws std::logic_error.
class DrainSignal {
 public:
  DrainSignal();
  ~DrainSignal();

  DrainSignal(const DrainSignal&) = delete;
  DrainSignal& operator=(const DrainSignal&) = delete;

  /// True once SIGINT or SIGTERM has been received.
  bool requested() const noexcept;

  /// The latch itself, in the shape campaign::CampaignConfig::stop wants.
  const std::atomic<bool>* flag() const noexcept;

  /// Re-arms the latch (tests; a daemon that drains, spools and exits
  /// never needs this).
  void reset() noexcept;
};

}  // namespace sesame::service
