#include "sesame/safeml/distances.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sesame::safeml {

namespace {

void require_samples(const std::vector<double>& a, const std::vector<double>& b,
                     const char* who) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument(std::string(who) + ": empty sample");
  }
}

/// Walks the merged samples (both already ascending-sorted), invoking
/// cb(fa, fb, x, dx_to_next) at every step of the joint ECDF. `dx_to_next`
/// is 0 at the final point.
template <typename Callback>
void walk_sorted_ecdfs(const std::vector<double>& a, const std::vector<double>& b,
                       Callback&& cb) {
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  std::size_t ia = 0, ib = 0;
  while (ia < a.size() || ib < b.size()) {
    double x;
    if (ib >= b.size() || (ia < a.size() && a[ia] <= b[ib])) {
      x = a[ia];
    } else {
      x = b[ib];
    }
    while (ia < a.size() && a[ia] == x) ++ia;
    while (ib < b.size() && b[ib] == x) ++ib;
    const double fa = static_cast<double>(ia) / na;
    const double fb = static_cast<double>(ib) / nb;
    double next = x;
    bool have_next = false;
    if (ia < a.size()) {
      next = a[ia];
      have_next = true;
    }
    if (ib < b.size()) {
      next = have_next ? std::min(next, b[ib]) : b[ib];
      have_next = true;
    }
    const double dx = have_next ? next - x : 0.0;
    cb(fa, fb, x, dx);
  }
}

std::vector<double> sorted_copy(const std::vector<double>& v) {
  std::vector<double> out = v;
  std::sort(out.begin(), out.end());
  return out;
}

double ks_sorted(const std::vector<double>& a, const std::vector<double>& b) {
  double best = 0.0;
  walk_sorted_ecdfs(a, b, [&](double fa, double fb, double, double) {
    best = std::max(best, std::abs(fa - fb));
  });
  return best;
}

double kuiper_sorted(const std::vector<double>& a, const std::vector<double>& b) {
  double dplus = 0.0, dminus = 0.0;
  walk_sorted_ecdfs(a, b, [&](double fa, double fb, double, double) {
    dplus = std::max(dplus, fa - fb);
    dminus = std::max(dminus, fb - fa);
  });
  return dplus + dminus;
}

double anderson_darling_sorted(const std::vector<double>& a,
                               const std::vector<double>& b) {
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  const double n = na + nb;
  double acc = 0.0;
  // Integrate (Fa-Fb)^2 / (H(1-H)) dH-steps over the pooled ECDF H.
  walk_sorted_ecdfs(a, b, [&](double fa, double fb, double, double) {
    const double h = (na * fa + nb * fb) / n;
    const double w = h * (1.0 - h);
    if (w > 1e-12) {
      const double d = fa - fb;
      acc += d * d / w;
    }
  });
  // Normalize by the number of joint steps so the statistic is comparable
  // across window sizes (runtime monitors use fixed windows anyway).
  return acc * (na * nb) / (n * n);
}

double cramer_von_mises_sorted(const std::vector<double>& a,
                               const std::vector<double>& b) {
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  const double n = na + nb;
  double acc = 0.0;
  walk_sorted_ecdfs(a, b, [&](double fa, double fb, double, double) {
    const double d = fa - fb;
    acc += d * d;
  });
  return acc * (na * nb) / (n * n);
}

double wasserstein_sorted(const std::vector<double>& a,
                          const std::vector<double>& b) {
  double acc = 0.0;
  walk_sorted_ecdfs(a, b, [&](double fa, double fb, double, double dx) {
    acc += std::abs(fa - fb) * dx;
  });
  return acc;
}

double dts_sorted(const std::vector<double>& a, const std::vector<double>& b) {
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  const double n = na + nb;
  double acc = 0.0;
  walk_sorted_ecdfs(a, b, [&](double fa, double fb, double, double dx) {
    const double h = (na * fa + nb * fb) / n;
    const double w = h * (1.0 - h);
    if (w > 1e-12) {
      const double d = fa - fb;
      acc += (d * d / w) * dx;
    }
  });
  return acc;
}

}  // namespace

std::string measure_name(Measure m) {
  switch (m) {
    case Measure::kKolmogorovSmirnov: return "KS";
    case Measure::kKuiper: return "Kuiper";
    case Measure::kAndersonDarling: return "AndersonDarling";
    case Measure::kCramerVonMises: return "CramerVonMises";
    case Measure::kWasserstein: return "Wasserstein";
    case Measure::kDts: return "DTS";
  }
  return "unknown";
}

const std::vector<Measure>& all_measures() {
  static const std::vector<Measure> ms{
      Measure::kKolmogorovSmirnov, Measure::kKuiper,
      Measure::kAndersonDarling,   Measure::kCramerVonMises,
      Measure::kWasserstein,       Measure::kDts};
  return ms;
}

double ks_distance(const std::vector<double>& a, const std::vector<double>& b) {
  require_samples(a, b, "ks_distance");
  return ks_sorted(sorted_copy(a), sorted_copy(b));
}

double kuiper_distance(const std::vector<double>& a, const std::vector<double>& b) {
  require_samples(a, b, "kuiper_distance");
  return kuiper_sorted(sorted_copy(a), sorted_copy(b));
}

double anderson_darling_distance(const std::vector<double>& a,
                                 const std::vector<double>& b) {
  require_samples(a, b, "anderson_darling_distance");
  return anderson_darling_sorted(sorted_copy(a), sorted_copy(b));
}

double cramer_von_mises_distance(const std::vector<double>& a,
                                 const std::vector<double>& b) {
  require_samples(a, b, "cramer_von_mises_distance");
  return cramer_von_mises_sorted(sorted_copy(a), sorted_copy(b));
}

double wasserstein_distance(const std::vector<double>& a,
                            const std::vector<double>& b) {
  require_samples(a, b, "wasserstein_distance");
  return wasserstein_sorted(sorted_copy(a), sorted_copy(b));
}

double dts_distance(const std::vector<double>& a, const std::vector<double>& b) {
  require_samples(a, b, "dts_distance");
  return dts_sorted(sorted_copy(a), sorted_copy(b));
}

double distance(Measure m, const std::vector<double>& a,
                const std::vector<double>& b) {
  switch (m) {
    case Measure::kKolmogorovSmirnov: return ks_distance(a, b);
    case Measure::kKuiper: return kuiper_distance(a, b);
    case Measure::kAndersonDarling: return anderson_darling_distance(a, b);
    case Measure::kCramerVonMises: return cramer_von_mises_distance(a, b);
    case Measure::kWasserstein: return wasserstein_distance(a, b);
    case Measure::kDts: return dts_distance(a, b);
  }
  throw std::invalid_argument("distance: unknown measure");
}

double distance_sorted(Measure m, const std::vector<double>& a_sorted,
                       const std::vector<double>& b_sorted) {
  require_samples(a_sorted, b_sorted, "distance_sorted");
  switch (m) {
    case Measure::kKolmogorovSmirnov: return ks_sorted(a_sorted, b_sorted);
    case Measure::kKuiper: return kuiper_sorted(a_sorted, b_sorted);
    case Measure::kAndersonDarling:
      return anderson_darling_sorted(a_sorted, b_sorted);
    case Measure::kCramerVonMises:
      return cramer_von_mises_sorted(a_sorted, b_sorted);
    case Measure::kWasserstein: return wasserstein_sorted(a_sorted, b_sorted);
    case Measure::kDts: return dts_sorted(a_sorted, b_sorted);
  }
  throw std::invalid_argument("distance_sorted: unknown measure");
}

double permutation_p_value(Measure m, const std::vector<double>& a,
                           const std::vector<double>& b, mathx::Rng& rng,
                           int iterations) {
  require_samples(a, b, "permutation_p_value");
  if (iterations <= 0) {
    throw std::invalid_argument("permutation_p_value: iterations <= 0");
  }
  const double observed = distance(m, a, b);
  std::vector<double> pooled;
  pooled.reserve(a.size() + b.size());
  pooled.insert(pooled.end(), a.begin(), a.end());
  pooled.insert(pooled.end(), b.begin(), b.end());
  int exceed = 0;
  std::vector<double> pa(a.size()), pb(b.size());
  for (int it = 0; it < iterations; ++it) {
    rng.shuffle(pooled);
    std::copy(pooled.begin(), pooled.begin() + static_cast<long>(a.size()),
              pa.begin());
    std::copy(pooled.begin() + static_cast<long>(a.size()), pooled.end(),
              pb.begin());
    if (distance(m, pa, pb) >= observed) ++exceed;
  }
  // Add-one smoothing keeps the p-value away from exactly 0.
  return (exceed + 1.0) / (iterations + 1.0);
}

}  // namespace sesame::safeml
