#include "sesame/safeml/drift.hpp"

#include <algorithm>
#include <stdexcept>

namespace sesame::safeml {

DriftDetector::DriftDetector(DriftDetectorConfig config) : config_(config) {
  if (config_.slack < 0.0 || config_.threshold <= 0.0) {
    throw std::invalid_argument("DriftDetector: bad config");
  }
}

bool DriftDetector::push(double dissimilarity) {
  ++samples_;
  if (alarmed_) return true;  // latched
  statistic_ = std::max(
      0.0, statistic_ + dissimilarity - config_.reference - config_.slack);
  if (statistic_ >= config_.threshold) {
    alarmed_ = true;
    alarm_index_ = samples_ - 1;
  }
  return alarmed_;
}

void DriftDetector::reset() {
  statistic_ = 0.0;
  alarmed_ = false;
  samples_ = 0;
  alarm_index_.reset();
}

}  // namespace sesame::safeml
