#include "sesame/safeml/monitor.hpp"

#include <algorithm>
#include <stdexcept>

namespace sesame::safeml {

std::string confidence_level_name(ConfidenceLevel c) {
  switch (c) {
    case ConfidenceLevel::kHigh: return "High";
    case ConfidenceLevel::kMedium: return "Medium";
    case ConfidenceLevel::kLow: return "Low";
  }
  return "unknown";
}

Monitor::Monitor(MonitorConfig config, std::vector<std::vector<double>> reference)
    : config_(config), reference_(std::move(reference)) {
  if (reference_.empty()) {
    throw std::invalid_argument("Monitor: no reference features");
  }
  for (const auto& f : reference_) {
    if (f.empty()) throw std::invalid_argument("Monitor: empty reference sample");
  }
  if (config_.window < 2) throw std::invalid_argument("Monitor: window < 2");
  if (config_.full_scale <= 0.0) {
    throw std::invalid_argument("Monitor: full_scale <= 0");
  }
  if (!(config_.low_threshold < config_.high_threshold) ||
      config_.low_threshold < 0.0 || config_.high_threshold > 1.0) {
    throw std::invalid_argument("Monitor: bad thresholds");
  }
  window_.resize(reference_.size());
  reference_sorted_ = reference_;
  for (auto& f : reference_sorted_) std::sort(f.begin(), f.end());
}

void Monitor::push(const std::vector<double>& features) {
  if (features.size() != reference_.size()) {
    throw std::invalid_argument("Monitor::push: feature count mismatch");
  }
  for (std::size_t i = 0; i < features.size(); ++i) {
    window_[i].push_back(features[i]);
    if (window_[i].size() > config_.window) window_[i].pop_front();
  }
}

std::size_t Monitor::buffered() const noexcept {
  return window_.empty() ? 0 : window_.front().size();
}

bool Monitor::ready() const noexcept { return buffered() >= config_.window; }

std::vector<double> Monitor::per_feature_dissimilarity() const {
  if (!ready()) return {};
  std::vector<double> out;
  out.reserve(reference_.size());
  for (std::size_t i = 0; i < reference_.size(); ++i) {
    std::vector<double> runtime(window_[i].begin(), window_[i].end());
    std::sort(runtime.begin(), runtime.end());
    out.push_back(distance_sorted(config_.measure, reference_sorted_[i], runtime));
  }
  return out;
}

std::optional<Assessment> Monitor::assess() const {
  if (!ready()) return std::nullopt;
  const auto per_feature = per_feature_dissimilarity();
  double total = 0.0;
  for (double d : per_feature) total += d;
  const double dissimilarity = total / static_cast<double>(reference_.size());
  Assessment a;
  a.dissimilarity = dissimilarity;
  a.confidence = std::clamp(1.0 - dissimilarity / config_.full_scale, 0.0, 1.0);
  a.level = classify(a.confidence);
  a.window_size = buffered();
  return a;
}

void Monitor::reset() {
  for (auto& w : window_) w.clear();
}

ConfidenceLevel Monitor::classify(double confidence) const {
  if (confidence >= config_.high_threshold) return ConfidenceLevel::kHigh;
  if (confidence >= config_.low_threshold) return ConfidenceLevel::kMedium;
  return ConfidenceLevel::kLow;
}

}  // namespace sesame::safeml
