#include "sesame/safeml/calibration.hpp"

#include <stdexcept>

#include "sesame/mathx/stats.hpp"
#include "sesame/safeml/distances.hpp"

namespace sesame::safeml {

CalibrationReport calibrate_monitor(
    Measure measure, const std::vector<std::vector<double>>& reference,
    std::size_t window, mathx::Rng& rng, int trials, double high_threshold,
    double low_threshold) {
  if (reference.empty()) {
    throw std::invalid_argument("calibrate_monitor: no reference features");
  }
  for (const auto& f : reference) {
    if (f.size() < window) {
      throw std::invalid_argument(
          "calibrate_monitor: reference smaller than window");
    }
  }
  if (window < 2) throw std::invalid_argument("calibrate_monitor: window < 2");
  if (trials < 10) throw std::invalid_argument("calibrate_monitor: trials < 10");
  if (!(0.0 < low_threshold && low_threshold < high_threshold &&
        high_threshold < 1.0)) {
    throw std::invalid_argument("calibrate_monitor: bad thresholds");
  }

  // Bootstrap self-distances: window resampled from the reference vs the
  // reference itself, aggregated across features as the monitor does.
  std::vector<double> self_distances;
  self_distances.reserve(static_cast<std::size_t>(trials));
  std::vector<double> win(window);
  for (int t = 0; t < trials; ++t) {
    double total = 0.0;
    for (const auto& feature : reference) {
      for (std::size_t i = 0; i < window; ++i) {
        win[i] = feature[rng.uniform_index(feature.size())];
      }
      total += distance(measure, feature, win);
    }
    self_distances.push_back(total / static_cast<double>(reference.size()));
  }

  CalibrationReport report;
  report.self_distance_p50 = mathx::quantile(self_distances, 0.50);
  report.self_distance_p95 = mathx::quantile(self_distances, 0.95);

  MonitorConfig cfg;
  cfg.measure = measure;
  cfg.window = window;
  cfg.high_threshold = high_threshold;
  cfg.low_threshold = low_threshold;
  // confidence(d) = 1 - d / full_scale; place the p95 self-distance at the
  // High boundary so clean windows classify High ~95% of the time.
  const double p95 = std::max(report.self_distance_p95, 1e-9);
  cfg.full_scale = p95 / (1.0 - high_threshold);
  report.config = cfg;
  return report;
}

}  // namespace sesame::safeml
