// SafeML runtime monitor.
//
// Holds per-feature reference samples captured from the ML model's training
// data and compares a sliding window of runtime feature values against them.
// The aggregated statistical distance maps to a confidence in the ML
// model's output; ConSerts consume the confidence level to decide whether
// perception-based guarantees (e.g. "vision-based navigation < 1 m") hold.
#pragma once

#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "sesame/safeml/distances.hpp"

namespace sesame::safeml {

/// Discrete confidence levels reported to ConSerts.
enum class ConfidenceLevel { kHigh, kMedium, kLow };

std::string confidence_level_name(ConfidenceLevel c);

/// One monitor verdict.
struct Assessment {
  double dissimilarity = 0.0;  ///< aggregated distance across features
  double confidence = 1.0;     ///< 1 - normalized dissimilarity, in [0, 1]
  ConfidenceLevel level = ConfidenceLevel::kHigh;
  std::size_t window_size = 0;  ///< samples the verdict is based on
};

/// Monitor configuration.
struct MonitorConfig {
  Measure measure = Measure::kKolmogorovSmirnov;
  std::size_t window = 64;  ///< sliding-window length (per feature)
  /// Dissimilarity value mapping to confidence 0. KS/Kuiper are already in
  /// [0,1]/[0,2]; for unbounded measures (Wasserstein/AD) choose the scale
  /// from training-time calibration.
  double full_scale = 1.0;
  double high_threshold = 0.75;  ///< confidence >= this -> High
  double low_threshold = 0.40;   ///< confidence < this -> Low
};

/// Sliding-window distribution-shift monitor over one or more features.
class Monitor {
 public:
  /// `reference` holds one training-time sample per feature (all non-empty,
  /// same feature count as runtime pushes). Throws std::invalid_argument on
  /// empty/invalid configuration.
  Monitor(MonitorConfig config, std::vector<std::vector<double>> reference);

  std::size_t num_features() const noexcept { return reference_.size(); }
  const MonitorConfig& config() const noexcept { return config_; }

  /// Pushes one runtime observation (one value per feature).
  void push(const std::vector<double>& features);

  /// Number of runtime observations currently buffered.
  std::size_t buffered() const noexcept;

  /// True once the window is full and assessments are meaningful.
  bool ready() const noexcept;

  /// Assesses the current window. Before `ready()`, returns nullopt.
  std::optional<Assessment> assess() const;

  /// Per-feature distances of the current window (diagnostics: which input
  /// channel drifted). Empty before `ready()`.
  std::vector<double> per_feature_dissimilarity() const;

  /// Clears the runtime window (e.g. after a mode change).
  void reset();

 private:
  MonitorConfig config_;
  std::vector<std::vector<double>> reference_;
  /// Ascending-sorted copies of reference_, built once so every assessment
  /// uses the distance_sorted() fast path instead of re-sorting the (large,
  /// immutable) reference sample.
  std::vector<std::vector<double>> reference_sorted_;
  std::vector<std::deque<double>> window_;

  ConfidenceLevel classify(double confidence) const;
};

}  // namespace sesame::safeml
