// Two-sample statistical distance measures over empirical CDFs.
//
// SafeML (Aslansefat et al., IMBSA 2020) estimates the dissimilarity
// between the data distribution seen at runtime and the distribution the
// ML model was trained on. All measures here are the ECDF-based statistics
// of that paper: Kolmogorov-Smirnov, Kuiper, Anderson-Darling,
// Cramer-von Mises, Wasserstein-1, and the DTS (combined) measure.
// Larger values mean the runtime data looks less like the training data.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sesame/mathx/rng.hpp"

namespace sesame::safeml {

/// Identifier for a distance measure (used by config/reporting and the
/// ablation benchmark).
enum class Measure {
  kKolmogorovSmirnov,
  kKuiper,
  kAndersonDarling,
  kCramerVonMises,
  kWasserstein,
  kDts,  ///< Wasserstein weighted by the AD variance term
};

/// Human-readable measure name ("KS", "Kuiper", ...).
std::string measure_name(Measure m);

/// All measures, for sweep code.
const std::vector<Measure>& all_measures();

/// Kolmogorov-Smirnov statistic: sup |F_a - F_b|. Range [0, 1].
double ks_distance(const std::vector<double>& a, const std::vector<double>& b);

/// Kuiper statistic: sup (F_a - F_b) + sup (F_b - F_a). Range [0, 2];
/// sensitive to shifts in the tails as well as the median.
double kuiper_distance(const std::vector<double>& a, const std::vector<double>& b);

/// Two-sample Anderson-Darling statistic (normalized variant), tail-weighted.
double anderson_darling_distance(const std::vector<double>& a,
                                 const std::vector<double>& b);

/// Two-sample Cramer-von Mises statistic.
double cramer_von_mises_distance(const std::vector<double>& a,
                                 const std::vector<double>& b);

/// 1-Wasserstein (earth mover's) distance between empirical distributions;
/// in the units of the underlying feature.
double wasserstein_distance(const std::vector<double>& a,
                            const std::vector<double>& b);

/// DTS measure: Wasserstein transport cost with Anderson-Darling-style
/// variance weighting (the "ECDF-based distance with taste of both"
/// combined statistic used in the SafeML tooling).
double dts_distance(const std::vector<double>& a, const std::vector<double>& b);

/// Evaluates any measure by enum.
double distance(Measure m, const std::vector<double>& a,
                const std::vector<double>& b);

/// Same as distance(), but requires both samples to already be sorted in
/// ascending order and skips the per-call copy + sort. Callers with a
/// fixed reference sample (runtime monitors) sort it once and amortize;
/// the result is bit-identical to distance() on the unsorted samples.
double distance_sorted(Measure m, const std::vector<double>& a_sorted,
                       const std::vector<double>& b_sorted);

/// Permutation-test p-value for the hypothesis that `a` and `b` come from
/// the same distribution, under the given measure. Small p-values indicate
/// distributional shift. `iterations` permutations are used.
double permutation_p_value(Measure m, const std::vector<double>& a,
                           const std::vector<double>& b, mathx::Rng& rng,
                           int iterations = 200);

}  // namespace sesame::safeml
