// Sequential drift detection on the monitor's dissimilarity stream.
//
// The sliding-window monitor gives a point-in-time verdict; deciding *when
// a persistent shift began* (as opposed to a transient blip the mission
// should ride through) is a sequential change-detection problem. This is a
// one-sided CUSUM on the dissimilarity sequence: the statistic accumulates
// excess dissimilarity above a reference level and alarms when it crosses
// a decision threshold — the standard minimal-delay detector for a mean
// shift, here tuned by the same bootstrap calibration as the monitor.
#pragma once

#include <cstddef>
#include <optional>

namespace sesame::safeml {

struct DriftDetectorConfig {
  /// Expected dissimilarity under no drift (e.g. the calibration's p50).
  double reference = 0.1;
  /// Slack below which deviations are ignored (CUSUM "k", in dissimilarity
  /// units; typically half the shift worth detecting).
  double slack = 0.05;
  /// Alarm threshold on the accumulated statistic (CUSUM "h").
  double threshold = 0.5;
};

class DriftDetector {
 public:
  explicit DriftDetector(DriftDetectorConfig config = {});

  const DriftDetectorConfig& config() const noexcept { return config_; }

  /// Feeds one dissimilarity sample; returns true when the alarm fires
  /// (it stays latched until reset()).
  bool push(double dissimilarity);

  bool alarmed() const noexcept { return alarmed_; }
  double statistic() const noexcept { return statistic_; }
  std::size_t samples_seen() const noexcept { return samples_; }

  /// Sample index at which the alarm fired (0-based), if it has.
  std::optional<std::size_t> alarm_index() const noexcept {
    return alarm_index_;
  }

  void reset();

 private:
  DriftDetectorConfig config_;
  double statistic_ = 0.0;
  bool alarmed_ = false;
  std::size_t samples_ = 0;
  std::optional<std::size_t> alarm_index_;
};

}  // namespace sesame::safeml
