// Training-time calibration of the SafeML monitor.
//
// The monitor maps a raw statistical distance onto a confidence via a
// `full_scale` parameter; picking it by hand is fragile because the
// no-shift ("self") distance of a finite window is measure-, window- and
// data-dependent. This helper bootstraps windows from the reference data
// itself, measures the self-distance noise floor, and sizes the scale so
// that in-distribution windows land at/above the High-confidence
// threshold — the calibration step a deployment would run once at design
// time, alongside model training.
#pragma once

#include <vector>

#include "sesame/mathx/rng.hpp"
#include "sesame/safeml/monitor.hpp"

namespace sesame::safeml {

struct CalibrationReport {
  MonitorConfig config;          ///< ready-to-use monitor configuration
  double self_distance_p50 = 0.0;  ///< bootstrap self-distance median
  double self_distance_p95 = 0.0;  ///< ... and 95th percentile (noise floor)
};

/// Calibrates a MonitorConfig for the given measure/window against
/// multi-feature reference data (same layout as Monitor's constructor).
/// `trials` bootstrap windows are drawn per feature. The returned
/// full_scale places the p95 self-distance exactly at `high_threshold`
/// confidence, so clean data classifies High with ~95% probability.
/// Throws std::invalid_argument on empty reference, window < 2, trials < 10
/// or thresholds outside 0 < low < high < 1.
CalibrationReport calibrate_monitor(Measure measure,
                                    const std::vector<std::vector<double>>& reference,
                                    std::size_t window, mathx::Rng& rng,
                                    int trials = 200,
                                    double high_threshold = 0.75,
                                    double low_threshold = 0.40);

}  // namespace sesame::safeml
