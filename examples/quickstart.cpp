// Quickstart: the smallest end-to-end use of the SESAME stack.
//
// Builds a two-UAV world, plans a SAR sweep, attaches the EDDI monitors,
// and runs the mission while printing the ConSert decisions — about thirty
// lines of API use from world creation to mission report.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "sesame/platform/mission_runner.hpp"

int main() {
  using namespace sesame;

  platform::RunnerConfig config;
  config.sesame_enabled = true;
  config.n_uavs = 2;
  config.area = {0.0, 150.0, 0.0, 150.0};  // 150 m x 150 m search area
  config.coverage.altitude_m = 20.0;
  config.n_persons = 4;
  config.max_time_s = 600.0;

  platform::MissionRunner runner(config);
  const platform::RunnerResult result = runner.run();

  std::printf("=== SESAME quickstart: 2-UAV search-and-rescue ===\n");
  std::printf("mission complete : %s\n",
              result.mission_complete_time_s ? "yes" : "no");
  if (result.mission_complete_time_s) {
    std::printf("completion time  : %.0f s\n", *result.mission_complete_time_s);
  }
  std::printf("fleet availability: %.1f %%\n", 100.0 * result.availability);
  std::printf("persons found     : %zu / %zu\n", result.detection.persons_found,
              result.detection.persons_total);
  std::printf("detection recall  : %.1f %%\n", 100.0 * result.detection.recall());

  // Inspect one UAV's ConSert action trace (every 30 s).
  std::printf("\n%-8s %-10s %-8s %-22s %s\n", "t (s)", "P(fail)", "SoC",
              "mode", "ConSert action");
  const auto& series = result.series.at("uav1");
  for (std::size_t i = 0; i < series.size(); i += 30) {
    const auto& r = series[i];
    std::printf("%-8.0f %-10.4f %-8.2f %-22s %s\n", r.time_s, r.p_fail, r.soc,
                sim::flight_mode_name(r.mode).c_str(),
                conserts::uav_action_name(r.action).c_str());
  }
  return 0;
}
