// campaign_service: the campaign-as-a-service mission daemon
// (docs/SERVICE.md).
//
// Runs a CampaignService behind two loopback listeners:
//   - an HTTP/1.1 endpoint (curl-friendly; routes in service/http.hpp);
//   - a framed wire endpoint speaking the mw::Framing protocol
//     (campaign_submit --transport wire), with a security::WireMonitor
//     per session feeding a Security EDDI — tampered or replayed frames
//     on the submission link raise IDS alerts like any other intrusion.
//
// Usage:
//   campaign_service [--http-port P] [--wire-port P] [--executors N]
//                    [--jobs J] [--spool DIR] [--max-queued N]
//
// --http-port / --wire-port 0 picks an ephemeral port; the daemon prints
//   `listening http=P wire=P` once bound (smoke scripts parse this line).
// --executors: campaigns running concurrently; --jobs: worker threads per
//   campaign (report bytes are identical for any value of either).
// --spool DIR: graceful-drain spool. On SIGINT/SIGTERM the daemon stops
//   claiming work, lets in-flight runs finish, and writes every
//   unfinished submission to DIR as canonical JSON; on startup it
//   re-submits and deletes any spooled files it finds there. With no
//   spool dir, drained submissions are counted and dropped.
//
// Everything is single-threaded except the service's executor pool; the
// poll() loop owns all sockets, wire sessions and the wire-security
// observability bundle.
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "sesame/mw/bus.hpp"
#include "sesame/security/attack_tree.hpp"
#include "sesame/security/security_eddi.hpp"
#include "sesame/service/drain.hpp"
#include "sesame/service/http.hpp"
#include "sesame/service/service.hpp"
#include "sesame/service/wire.hpp"

namespace {

using namespace sesame;

struct Connection {
  int fd = -1;
  bool is_wire = false;
  service::HttpConnection http;
  std::unique_ptr<service::WireSession> wire;
  std::string out;       ///< bytes waiting for the socket
  bool closing = false;  ///< close once `out` drains (HTTP: after response)
};

/// Binds a non-blocking loopback listener; fills in the bound port.
int make_listener(std::uint16_t port, std::uint16_t& bound) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return -1;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  bound = ntohs(addr.sin_port);
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL) | O_NONBLOCK);
  return fd;
}

/// Replays spooled submissions left by a previous drain.
std::size_t replay_spool(service::CampaignService& svc,
                         const std::filesystem::path& dir) {
  std::size_t replayed = 0;
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".json") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());  // deterministic replay order
  for (const auto& file : files) {
    std::ifstream in(file);
    std::stringstream buf;
    buf << in.rdbuf();
    try {
      const auto outcome =
          svc.submit(service::submission_from_json(buf.str()));
      if (!outcome.accepted) {
        std::fprintf(stderr, "spool %s rejected: %s (left in place)\n",
                     file.c_str(), outcome.reject_reason.c_str());
        continue;
      }
      ++replayed;
      std::filesystem::remove(file);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "spool %s unreadable: %s (left in place)\n",
                   file.c_str(), e.what());
    }
  }
  return replayed;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t http_port = 8765;
  std::uint16_t wire_port = 8766;
  std::string spool_dir;
  service::ServiceLimits limits;

  for (int i = 1; i < argc; ++i) {
    const auto need_value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--http-port") == 0) {
      http_port = static_cast<std::uint16_t>(std::atoi(need_value(argv[i])));
    } else if (std::strcmp(argv[i], "--wire-port") == 0) {
      wire_port = static_cast<std::uint16_t>(std::atoi(need_value(argv[i])));
    } else if (std::strcmp(argv[i], "--executors") == 0) {
      limits.executors =
          static_cast<std::size_t>(std::atoi(need_value(argv[i])));
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      limits.jobs_per_campaign =
          static_cast<std::size_t>(std::atoi(need_value(argv[i])));
    } else if (std::strcmp(argv[i], "--max-queued") == 0) {
      limits.max_queued =
          static_cast<std::size_t>(std::atoi(need_value(argv[i])));
    } else if (std::strcmp(argv[i], "--spool") == 0) {
      spool_dir = need_value(argv[i]);
    } else {
      std::fprintf(stderr, "unknown flag '%s' (see the file header)\n",
                   argv[i]);
      return 2;
    }
  }

  service::CampaignService svc(limits);

  // Wire-link security: per-session monitors publish IDS alerts here; one
  // Security EDDI watches the spoofing tree over all submission links.
  mw::Bus alert_bus;
  security::SecurityEddi eddi(alert_bus,
                              security::make_spoofing_attack_tree());
  obs::Observability wire_obs;

  if (!spool_dir.empty()) {
    std::filesystem::create_directories(spool_dir);
    const std::size_t replayed = replay_spool(svc, spool_dir);
    if (replayed > 0) {
      std::printf("replayed %zu spooled submission(s)\n", replayed);
    }
  }

  service::DrainSignal drain;

  std::uint16_t http_bound = 0;
  std::uint16_t wire_bound = 0;
  const int http_fd = make_listener(http_port, http_bound);
  const int wire_fd = make_listener(wire_port, wire_bound);
  if (http_fd < 0 || wire_fd < 0) {
    std::fprintf(stderr, "failed to bind listeners (%s)\n",
                 std::strerror(errno));
    return 1;
  }
  std::printf("listening http=%u wire=%u\n", http_bound, wire_bound);
  std::fflush(stdout);

  const auto started = std::chrono::steady_clock::now();
  const auto now_s = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         started)
        .count();
  };

  std::map<int, Connection> conns;
  std::uint64_t next_wire_link = 1;

  while (!drain.requested()) {
    std::vector<pollfd> fds;
    fds.push_back({http_fd, POLLIN, 0});
    fds.push_back({wire_fd, POLLIN, 0});
    for (auto& [fd, conn] : conns) {
      short events = POLLIN;
      if (!conn.out.empty()) events |= POLLOUT;
      fds.push_back({fd, events, 0});
    }
    const int ready = ::poll(fds.data(), fds.size(), 200);
    if (ready < 0) {
      if (errno == EINTR) continue;  // signal: loop re-checks the latch
      std::fprintf(stderr, "poll: %s\n", std::strerror(errno));
      break;
    }

    // New connections.
    for (const int listener : {http_fd, wire_fd}) {
      for (;;) {
        const int fd = ::accept(listener, nullptr, nullptr);
        if (fd < 0) break;
        ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL) | O_NONBLOCK);
        Connection conn;
        conn.fd = fd;
        conn.is_wire = listener == wire_fd;
        if (conn.is_wire) {
          conn.wire = std::make_unique<service::WireSession>(
              svc, alert_bus,
              "service_wire_" + std::to_string(next_wire_link++));
          conn.wire->set_observability(&wire_obs);
          conn.wire->start();
          const auto bytes = conn.wire->take_outbound();
          conn.out.append(reinterpret_cast<const char*>(bytes.data()),
                          bytes.size());
        }
        conns.emplace(fd, std::move(conn));
      }
    }

    std::vector<int> closed;
    for (auto& pfd : fds) {
      const auto it = conns.find(pfd.fd);
      if (it == conns.end()) continue;
      Connection& conn = it->second;

      if ((pfd.revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
        char buf[4096];
        const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
        if (n <= 0 && !(n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))) {
          if (conn.out.empty()) {
            closed.push_back(conn.fd);
            continue;
          }
          conn.closing = true;  // flush what we owe, then close
        } else if (n > 0) {
          if (conn.is_wire) {
            conn.wire->feed(std::span<const std::uint8_t>(
                reinterpret_cast<const std::uint8_t*>(buf),
                static_cast<std::size_t>(n)));
            conn.wire->poll_security(now_s());
            const auto bytes = conn.wire->take_outbound();
            conn.out.append(reinterpret_cast<const char*>(bytes.data()),
                            bytes.size());
          } else {
            if (auto req = conn.http.feed(buf, static_cast<std::size_t>(n))) {
              service::HttpResponse resp =
                  service::handle_request(svc, *req);
              // The daemon augments /metrics with the wire-security
              // families (sesame.security.wire_*) its monitors maintain.
              if (req->path == "/metrics" && resp.status == 200) {
                resp.body += wire_obs.metrics.render_prometheus();
              }
              conn.out = service::serialize_response(resp);
              conn.closing = true;
            } else if (conn.http.failed()) {
              closed.push_back(conn.fd);
              continue;
            }
          }
        }
      }

      if (!conn.out.empty()) {
        const ssize_t n = ::write(conn.fd, conn.out.data(), conn.out.size());
        if (n > 0) conn.out.erase(0, static_cast<std::size_t>(n));
      }
      if (conn.out.empty() && conn.closing) closed.push_back(conn.fd);
    }
    for (const int fd : closed) {
      ::close(fd);
      conns.erase(fd);
    }
  }

  // Graceful drain: finish in-flight runs, spool everything unfinished.
  std::fprintf(stderr, "drain: waiting for in-flight runs...\n");
  const auto spooled = svc.drain();
  if (!spooled.empty() && !spool_dir.empty()) {
    std::size_t index = 0;
    for (const auto& submission : spooled) {
      const auto path = std::filesystem::path(spool_dir) /
                        ("spool-" + std::to_string(index++) + ".json");
      std::ofstream out(path);
      out << service::submission_to_json(submission) << '\n';
    }
    std::fprintf(stderr, "drain: spooled %zu submission(s) to %s\n",
                 spooled.size(), spool_dir.c_str());
  } else if (!spooled.empty()) {
    std::fprintf(stderr, "drain: dropped %zu submission(s) (no --spool)\n",
                 spooled.size());
  }
  for (auto& [fd, conn] : conns) ::close(fd);
  ::close(http_fd);
  ::close(wire_fd);
  if (eddi.attack_detected()) {
    std::fprintf(stderr, "security: wire attack tree goal was reached\n");
  }
  return 0;
}
