// Spoofing attack detection and mitigation — the paper's Figs. 6 & 7 as a
// narrative walkthrough.
//
// A three-UAV fleet maps an area. Mid-mission an attacker spoofs UAV-1's
// GPS, dragging its real trajectory off the sweep (Fig. 6). The IDS spots
// the impossible position jumps, the Security EDDI traces the attack tree
// to its root goal, and the ConSert response disables the receiver and
// hands the victim to Collaborative Localization, which guides it — with
// no GPS at all — to a precise safe landing (Fig. 7).
//
// Run: ./build/examples/spoofing_response
#include <cstdio>

#include "sesame/localization/collaborative.hpp"
#include "sesame/security/attack_tree.hpp"
#include "sesame/security/ids.hpp"
#include "sesame/security/security_eddi.hpp"
#include "sesame/sim/world.hpp"

int main() {
  using namespace sesame;

  const geo::GeoPoint origin{35.1856, 33.3823, 0.0};
  sim::World world(origin, 42);

  // Fleet: the victim sweeps north; two assistants hold nearby.
  for (const char* name : {"uav1", "uav2", "uav3"}) {
    sim::UavConfig cfg;
    cfg.name = name;
    cfg.gps.spoof_drift_m_per_s = 2.0;  // attacker's walk-off rate
    cfg.gps.spoof_bearing_deg = 90.0;
    world.add_uav(cfg, origin);
  }
  world.uav_by_name("uav1").add_waypoint({0.0, 400.0, 30.0});
  world.uav_by_name("uav2").add_waypoint({60.0, 100.0, 30.0});
  world.uav_by_name("uav3").add_waypoint({-60.0, 100.0, 30.0});
  for (std::size_t i = 0; i < world.num_uavs(); ++i) {
    world.uav(i).command_takeoff();
  }

  // SESAME security stack: only Collaborative Localization is authorized
  // to publish position fixes; the IDS flags any other publisher.
  security::IntrusionDetectionSystem ids(world.bus());
  ids.authorize(sim::position_fix_topic("uav1"), "collaborative_localization");
  ids.track_position_topic(sim::position_fix_topic("uav1"));
  security::SecurityEddi eddi(world.bus(), security::make_spoofing_attack_tree());

  bool attack_reported = false;
  double detection_time = -1.0;
  eddi.on_event([&](const security::SecurityEvent& ev) {
    attack_reported = true;
    detection_time = ev.time_s;
    std::printf("\n[t=%5.0f s] SECURITY EVENT: goal '%s' achieved\n", ev.time_s,
                ev.attack_path.empty() ? "?" : ev.attack_path.front().c_str());
    for (const auto& step : ev.attack_path) {
      std::printf("             path: %s\n", step.c_str());
    }
    for (const auto& m : ev.mitigations) {
      std::printf("             mitigation: %s\n", m.c_str());
    }
  });

  std::printf("=== Phase 1: clean sweep, then spoofing at t=40 s ===\n");
  std::printf("%-8s %-12s %-12s %-14s\n", "t (s)", "true east", "est east",
              "est error (m)");

  sim::Uav& victim = world.uav_by_name("uav1");
  bool mitigated = false;
  double spoof_offset = 0.0;
  for (int t = 0; t < 120 && !mitigated; ++t) {
    world.step(1.0);
    if (t == 40) {
      std::printf("[t=%5d s] attacker starts injecting falsified position "
                  "fixes for uav1\n", t);
    }
    if (t >= 40) {
      // ROS message spoofing: counterfeit fixes walk the victim's estimate
      // east, pushing the true vehicle west off its mapping lane.
      spoof_offset += 2.0;
      world.bus().publish(sim::position_fix_topic("uav1"),
                          geo::destination(victim.true_geo(), 90.0, spoof_offset),
                          "attacker", world.time_s());
    }
    if (t % 10 == 0) {
      std::printf("%-8d %-12.1f %-12.1f %-14.1f\n", t,
                  victim.true_position().east_m,
                  victim.estimated_position().east_m,
                  victim.estimation_error_m());
    }
    if (attack_reported && !mitigated) {
      mitigated = true;
      std::printf("\n=== Phase 2: ConSert response — GPS off, Collaborative "
                  "Localization safe landing ===\n");
    }
  }

  if (!attack_reported) {
    std::printf("attack was not detected — unexpected\n");
    return 1;
  }

  // Mitigation: stop trusting the receiver, hand over to CL.
  victim.gps().set_disabled(true);
  localization::ObservationModel model;
  model.detection_range_m = 600.0;
  model.detection_probability = 0.97;
  localization::CollaborativeLocalizer cl(world, "uav1", {"uav2", "uav3"},
                                          model);
  const geo::EnuPoint safe_pad{20.0, 20.0, 30.0};
  localization::SafeLandingGuide guide(world, cl, safe_pad);

  std::printf("%-8s %-14s %-16s %-12s\n", "t (s)", "dist to pad",
              "CL fix error (m)", "mode");
  for (int t = 0; t < 400 && !guide.landed(); ++t) {
    world.step(1.0);
    guide.step();
    if (t % 15 == 0) {
      const auto fix = cl.update();
      std::printf("%-8.0f %-14.1f %-16.2f %-12s\n", world.time_s(),
                  guide.true_distance_to_target_m(),
                  fix ? fix->true_error_m : -1.0,
                  sim::flight_mode_name(victim.mode()).c_str());
    }
  }

  std::printf("\n=== Outcome ===\n");
  std::printf("attack detected at     : t=%.0f s (%.0f s after onset)\n",
              detection_time, detection_time - 40.0);
  std::printf("victim landed          : %s\n", guide.landed() ? "yes" : "no");
  std::printf("landing error from pad : %.1f m (with zero GPS)\n",
              guide.true_distance_to_target_m());
  std::printf("collaborative fixes    : %zu published\n", cl.fixes_published());
  return guide.landed() ? 0 : 1;
}
