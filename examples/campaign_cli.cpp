// Monte Carlo campaign runner: execute N seeded repetitions of a scenario
// on a worker pool and aggregate the outcomes into mean/CI/quantile
// summaries — the statistical backing for the paper's single-run figures.
//
// Usage:
//   campaign_cli [--preset NAME] [--config FILE.json]
//                [--runs N] [--jobs J] [--seed S]
//                [--uavs N] [--area-m M] [--altitude-m A] [--persons P]
//                [--max-time S] [--baseline]
//                [--battery-fault UAV:T] [--spoof UAV:T]
//                [--fault-plan FILE] [--link-loss]
//                [--chaos] [--fail-on-violation]
//                [--json FILE] [--csv PREFIX] [--no-metrics]
//
// --preset picks a paper scenario (nominal | battery_fault | spoofing |
//   spoofing_lossy | baseline | chaos | fleet_1024); later flags override
//   it. --config
//   loads a scenario_cli JSON file instead (mutually composable: preset,
//   then config, then flags).
// --jobs 0 uses one worker per hardware thread. Campaign results are
//   bit-identical for any --jobs value (docs/CAMPAIGN.md: determinism).
// --chaos gives every run a seed-derived random vehicle-failure schedule
//   (motor loss, sensor dropout, battery fault, comms blackout, hard
//   crash) with the recovery subsystem active (docs/ROBUSTNESS.md).
// --fail-on-violation exits 3 when any run reports a safety-invariant
//   violation (the chaos-stress CI gate).
// --json / --csv write the campaign report (schema in docs/CAMPAIGN.md).
//
// SIGINT/SIGTERM drain gracefully: in-flight runs finish, workers join,
// and no report is written (exit 4) — a report on disk is always complete.
//
// Examples:
//   campaign_cli --preset spoofing --runs 200 --jobs 0 --json camp.json
//   campaign_cli --preset battery_fault --runs 100 --link-loss --csv out
//   campaign_cli --chaos --runs 32 --jobs 0 --fail-on-violation
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "sesame/campaign/campaign.hpp"
#include "sesame/campaign/report.hpp"
#include "sesame/platform/config_io.hpp"
#include "sesame/service/drain.hpp"

namespace {

std::pair<std::string, double> parse_event(const char* arg) {
  const std::string s(arg);
  const auto colon = s.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= s.size()) {
    std::fprintf(stderr, "expected UAV:TIME, got '%s'\n", arg);
    std::exit(2);
  }
  return {s.substr(0, colon), std::atof(s.c_str() + colon + 1)};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sesame;

  platform::RunnerConfig scenario = campaign::ScenarioFactory::default_scenario();
  campaign::CampaignConfig campaign_config;
  campaign_config.runs = 16;
  campaign_config.jobs = 1;
  campaign_config.seed = 1;
  std::string json_path;
  std::string csv_prefix;
  bool chaos = false;
  bool fail_on_violation = false;

  // First pass: --preset / --config shape the scenario before overrides.
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--preset") == 0) {
      try {
        const auto preset = campaign::ScenarioFactory::preset(argv[i + 1]);
        scenario = preset.base();
        if (preset.chaos_enabled()) chaos = true;
      } catch (const std::exception& e) {
        std::fprintf(stderr, "--preset: %s\n", e.what());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--config") == 0) {
      scenario = platform::load_config(argv[i + 1]);
    }
  }

  for (int i = 1; i < argc; ++i) {
    const auto need_value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--preset") == 0 ||
        std::strcmp(argv[i], "--config") == 0) {
      need_value(argv[i]);  // applied in the first pass
    } else if (std::strcmp(argv[i], "--runs") == 0) {
      campaign_config.runs =
          static_cast<std::size_t>(std::atoll(need_value("--runs")));
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      campaign_config.jobs =
          static_cast<std::size_t>(std::atoi(need_value("--jobs")));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      campaign_config.seed =
          static_cast<std::uint64_t>(std::atoll(need_value("--seed")));
    } else if (std::strcmp(argv[i], "--uavs") == 0) {
      scenario.n_uavs = static_cast<std::size_t>(std::atoi(need_value("--uavs")));
    } else if (std::strcmp(argv[i], "--area-m") == 0) {
      const double side = std::atof(need_value("--area-m"));
      scenario.area = {0.0, side, 0.0, side};
    } else if (std::strcmp(argv[i], "--altitude-m") == 0) {
      scenario.coverage.altitude_m = std::atof(need_value("--altitude-m"));
    } else if (std::strcmp(argv[i], "--persons") == 0) {
      scenario.n_persons =
          static_cast<std::size_t>(std::atoi(need_value("--persons")));
    } else if (std::strcmp(argv[i], "--max-time") == 0) {
      scenario.max_time_s = std::atof(need_value("--max-time"));
    } else if (std::strcmp(argv[i], "--baseline") == 0) {
      scenario.sesame_enabled = false;
    } else if (std::strcmp(argv[i], "--battery-fault") == 0) {
      const auto [uav, t] = parse_event(need_value("--battery-fault"));
      scenario.battery_fault = platform::BatteryFaultEvent{uav, t, 0.40, 70.0};
    } else if (std::strcmp(argv[i], "--spoof") == 0) {
      const auto [uav, t] = parse_event(need_value("--spoof"));
      scenario.spoofing = platform::SpoofingEvent{uav, t, 2.0};
    } else if (std::strcmp(argv[i], "--fault-plan") == 0) {
      try {
        scenario.fault_plan = mw::load_fault_plan(need_value("--fault-plan"));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "--fault-plan: %s\n", e.what());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--link-loss") == 0) {
      scenario.lossy_links = true;
    } else if (std::strcmp(argv[i], "--chaos") == 0) {
      chaos = true;
    } else if (std::strcmp(argv[i], "--fail-on-violation") == 0) {
      fail_on_violation = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_path = need_value("--json");
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      csv_prefix = need_value("--csv");
    } else if (std::strcmp(argv[i], "--no-metrics") == 0) {
      campaign_config.collect_metrics = false;
    } else {
      std::fprintf(stderr, "unknown flag '%s' (see the file header)\n", argv[i]);
      return 2;
    }
  }
  if (campaign_config.runs == 0) {
    std::fprintf(stderr, "--runs must be positive\n");
    return 2;
  }

  campaign::ScenarioFactory factory(scenario);
  if (chaos) factory.enable_chaos();

  // Graceful drain (docs/SERVICE.md): SIGINT/SIGTERM stops the campaign at
  // run granularity — workers finish their current run and join, and the
  // report is either complete or not written at all, never truncated.
  service::DrainSignal drain;
  campaign_config.stop = drain.flag();

  campaign::CampaignResult result;
  try {
    result = campaign::run_campaign(factory, campaign_config);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign failed: %s\n", e.what());
    return 1;
  }
  if (result.interrupted) {
    std::fprintf(stderr,
                 "interrupted: drained after %zu/%zu runs; no report written\n",
                 result.completed_runs, campaign_config.runs);
    return 4;
  }

  std::printf("campaign seed     : %llu\n",
              static_cast<unsigned long long>(result.seed));
  std::printf("runs              : %zu on %zu worker(s)\n", result.runs,
              result.jobs_used);
  std::printf("wall time         : %.2f s (%.1f runs/s)\n", result.wall_seconds,
              result.wall_seconds > 0.0
                  ? static_cast<double>(result.runs) / result.wall_seconds
                  : 0.0);
  std::printf("%-28s %6s %12s %12s %12s %12s\n", "metric", "count", "mean",
              "ci95_lo", "ci95_hi", "p90");
  for (const auto& s : result.summaries) {
    if (s.count == 0) continue;
    std::printf("%-28s %6zu %12.4f %12.4f %12.4f %12.4f\n", s.metric.c_str(),
                s.count, s.mean, s.ci95_lo, s.ci95_hi, s.p90);
  }

  try {
    campaign::export_campaign(result, json_path, csv_prefix);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  if (!json_path.empty()) {
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (!csv_prefix.empty()) {
    std::printf("wrote %s_runs.csv and %s_summary.csv\n", csv_prefix.c_str(),
                csv_prefix.c_str());
  }

  std::size_t violations = 0;
  for (const auto& o : result.outcomes) violations += o.invariant_violations;
  if (violations > 0) {
    std::fprintf(stderr, "safety-invariant violations: %zu across %zu runs\n",
                 violations, result.runs);
    if (fail_on_violation) return 3;
  }
  return 0;
}
