// SafeDrones standalone: design-time fault-tree analysis and the runtime
// reliability monitor, without the full platform — the API a downstream
// user integrating only the reliability layer would call.
//
// Run: ./build/examples/reliability_monitor
#include <cstdio>

#include "sesame/safedrones/models.hpp"
#include "sesame/safedrones/uav_reliability.hpp"

int main() {
  using namespace sesame::safedrones;

  std::printf("=== SafeDrones design-time analysis ===\n");
  ReliabilityConfig config;
  config.propulsion.airframe = Airframe::kHexa;
  config.propulsion.motor_failure_rate = 2e-6;
  ReliabilityMonitor monitor(config);

  const auto tree = monitor.design_time_tree(1800.0);
  std::printf("fault tree '%s' over a 1800 s mission\n", tree.name().c_str());
  std::printf("top-event probability: %.3e\n", tree.top_probability(1800.0));

  std::printf("\nminimal cut sets:\n");
  for (const auto& cut : tree.minimal_cut_sets()) {
    std::printf("  {");
    bool first = true;
    for (const auto& e : cut) {
      std::printf("%s%s", first ? "" : ", ", e.c_str());
      first = false;
    }
    std::printf("}\n");
  }

  std::printf("\nimportance ranking at t=1800 s (maintenance priority):\n");
  std::printf("%-4s %-22s %-12s %s\n", "#", "basic event", "Birnbaum",
              "Fussell-Vesely");
  int rank = 1;
  for (const auto& entry : sesame::fta::rank_importance(tree, 1800.0)) {
    std::printf("%-4d %-22s %-12.4e %.4f\n", rank++, entry.event.c_str(),
                entry.birnbaum, entry.fussell_vesely);
  }

  std::printf("\n=== Propulsion reconfiguration benefit ===\n");
  std::printf("%-10s %-18s %-18s\n", "airframe", "MTTF w/ reconf (h)",
              "MTTF w/o reconf (h)");
  for (const Airframe af : {Airframe::kQuad, Airframe::kHexa, Airframe::kOcta}) {
    PropulsionConfig with;
    with.airframe = af;
    with.motor_failure_rate = 2e-6;
    with.reconfiguration = true;
    PropulsionConfig without = with;
    without.reconfiguration = false;
    std::printf("%-10zu %-18.1f %-18.1f\n", rotor_count(af),
                PropulsionModel(with).mttf() / 3600.0,
                PropulsionModel(without).mttf() / 3600.0);
  }

  std::printf("\n=== Runtime: battery thermal fault timeline ===\n");
  std::printf("(fault at t=250 s: SoC collapses to 40%%, cell at 70 C)\n");
  std::printf("%-8s %-8s %-10s %-10s %s\n", "t (s)", "SoC", "temp(C)",
              "P(fail)", "level");
  BatteryRuntimeTracker tracker(config.battery);
  double soc = 0.95;
  double temp = 32.0;
  for (int t = 0; t <= 600; t += 10) {
    if (t == 250) {
      soc = 0.40;
      temp = 70.0;
    }
    soc -= 0.0004 * 10;  // cruise discharge
    tracker.observe_soc(soc);
    tracker.advance(10.0, temp);
    TelemetrySnapshot snap;
    snap.battery_soc = soc;
    snap.battery_temp_c = temp;
    const auto prospective = monitor.evaluate(snap, 600.0);
    const auto estimate =
        monitor.compose(prospective.p_propulsion, tracker.failure_probability(),
                        prospective.p_processor, prospective.p_comms);
    if (t % 50 == 0) {
      std::printf("%-8d %-8.2f %-10.1f %-10.4f %s%s\n", t, soc, temp,
                  estimate.probability_of_failure,
                  reliability_level_name(estimate.level).c_str(),
                  estimate.abort_recommended ? "  << ABORT" : "");
    }
  }
  return 0;
}
