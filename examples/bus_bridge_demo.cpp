// Two-process bus federation over a socketpair (docs/PROTOCOL.md).
//
// The child process is the vehicle: its bus carries telemetry from a
// simulated UAV, and a BusBridge ships every publication through the
// framed wire protocol. The parent is the ground station: it watches
// the federated telemetry arrive on its *own* bus, and once enough has
// streamed in it publishes a return-to-home command — which crosses the
// same wire in the other direction and is acknowledged by the vehicle.
//
//   vehicle process                      GCS process
//   Bus ── BusBridge ── socketpair ── BusBridge ── Bus
//
// Everything the processes exchange is the byte protocol pinned in
// docs/PROTOCOL.md; run under `strace -e trace=read,write` to watch the
// COBS-delimited frames go by.
#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sesame/mw/bus.hpp"
#include "sesame/mw/bus_bridge.hpp"
#include "sesame/mw/codec.hpp"
#include "sesame/sim/wire_types.hpp"
#include "sesame/sim/world.hpp"

using namespace sesame;

namespace {

/// Moves bytes between the bridge and the socket (both directions).
/// Returns false when the peer hung up.
bool pump_socket(mw::BusBridge& bridge, int fd,
                 std::vector<std::uint8_t>& unsent) {
  if (unsent.empty() && bridge.has_outbound()) unsent = bridge.take_outbound();
  while (!unsent.empty()) {
    const ssize_t n = ::write(fd, unsent.data(), unsent.size());
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
    unsent.erase(unsent.begin(), unsent.begin() + n);
    if (unsent.empty() && bridge.has_outbound())
      unsent = bridge.take_outbound();
  }
  std::uint8_t buf[4096];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n == 0) return false;  // peer closed
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;
    }
    bridge.feed_inbound({buf, static_cast<std::size_t>(n)});
  }
}

/// One poll round with a short timeout; keeps the loop bounded.
void wait_readable(int fd) {
  pollfd p{fd, POLLIN, 0};
  ::poll(&p, 1, 20);
}

int run_vehicle(int fd) {
  mw::Codec codec;
  sim::register_wire_types(codec);
  mw::Bus bus;
  mw::BridgeConfig cfg;
  cfg.name = "vehicle_uplink";
  mw::BusBridge bridge(bus, codec, cfg);
  bridge.start();

  bool commanded = false;
  auto cmd_sub = bus.subscribe<std::string>(
      "gcs/commands",
      [&](const mw::MessageHeader& h, const std::string& cmd) {
        std::printf("[vehicle] t=%.1fs received command '%s' from %.*s\n",
                    h.time_s, cmd.c_str(), static_cast<int>(h.source.size()),
                    h.source.data());
        bus.publish("uav/uav1/ack", std::string("executing " + cmd), "uav1",
                    h.time_s);
        commanded = true;
      });

  std::vector<std::uint8_t> unsent;
  sim::Telemetry t;
  t.uav = "uav1";
  t.reported_position = {35.1875, 33.375, 0.0};
  t.mode = sim::FlightMode::kMission;
  for (int step = 0; step < 200 && !commanded; ++step) {
    t.time_s = 0.5 * step;
    t.altitude_m = 30.0 + step;
    t.reported_position.alt_m = t.altitude_m;
    t.battery_soc = 1.0 - 0.002 * step;
    bus.publish("uav/uav1/telemetry", t, "uav1", t.time_s);
    if (!pump_socket(bridge, fd, unsent)) break;
    if (!commanded) wait_readable(fd);
  }
  // Flush the ack before leaving.
  for (int i = 0; i < 50 && (bridge.has_outbound() || !unsent.empty()); ++i)
    if (!pump_socket(bridge, fd, unsent)) break;
  ::close(fd);
  return commanded ? 0 : 1;
}

int run_gcs(int fd, pid_t child) {
  mw::Codec codec;
  sim::register_wire_types(codec);
  mw::Bus bus;
  mw::BridgeConfig cfg;
  cfg.name = "gcs_downlink";
  mw::BusBridge bridge(bus, codec, cfg);
  bridge.start();

  int telemetry_seen = 0;
  double last_soc = 0.0;
  auto tel_sub = bus.subscribe<sim::Telemetry>(
      "uav/uav1/telemetry",
      [&](const mw::MessageHeader&, const sim::Telemetry& t) {
        ++telemetry_seen;
        last_soc = t.battery_soc;
      });
  bool acked = false;
  auto ack_sub = bus.subscribe<std::string>(
      "uav/uav1/ack",
      [&](const mw::MessageHeader& h, const std::string& msg) {
        std::printf("[gcs]     t=%.1fs vehicle acknowledged: %s\n", h.time_s,
                    msg.c_str());
        acked = true;
      });

  std::vector<std::uint8_t> unsent;
  bool sent_command = false;
  for (int round = 0; round < 500 && !acked; ++round) {
    if (!pump_socket(bridge, fd, unsent)) break;
    if (telemetry_seen >= 5 && !sent_command) {
      std::printf(
          "[gcs]     %d telemetry frames federated (battery %.1f%%), "
          "commanding return to home\n",
          telemetry_seen, 100.0 * last_soc);
      bus.publish("gcs/commands", std::string("return_to_home"), "gcs", 99.0);
      sent_command = true;
    }
    if (!acked) wait_readable(fd);
  }
  ::close(fd);

  int status = 0;
  ::waitpid(child, &status, 0);
  const auto& wire = bridge.link_counters();
  std::printf(
      "[gcs]     link stats: %llu frames rx, %llu bytes rx, %llu msgs "
      "delivered, %llu crc errors\n",
      static_cast<unsigned long long>(wire.frames_rx),
      static_cast<unsigned long long>(wire.bytes_rx),
      static_cast<unsigned long long>(wire.messages_rx),
      static_cast<unsigned long long>(wire.crc_errors));
  const bool child_ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
  if (telemetry_seen >= 5 && acked && child_ok) {
    std::printf("[gcs]     demo complete: two buses, one federation\n");
    return 0;
  }
  std::fprintf(stderr, "demo failed: telemetry=%d acked=%d child_ok=%d\n",
               telemetry_seen, acked ? 1 : 0, child_ok ? 1 : 0);
  return 1;
}

}  // namespace

int main() {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, sv) != 0) {
    std::perror("socketpair");
    return 1;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    return 1;
  }
  if (pid == 0) {
    ::close(sv[0]);
    std::exit(run_vehicle(sv[1]));
  }
  ::close(sv[1]);
  return run_gcs(sv[0], pid);
}
