// Fleet dashboard: what the paper's web GUI / ground control station
// renders — live fleet status from the Database Manager, the ConSert
// decisions, runtime metrics from the observability layer, and the ODE
// interchange documents a certification authority would pull from the
// platform.
//
// Run: ./build/examples/fleet_dashboard
#include <cstdio>

#include "sesame/eddi/consert_ode.hpp"
#include "sesame/obs/observability.hpp"
#include "sesame/obs/sinks.hpp"
#include "sesame/platform/database.hpp"
#include "sesame/platform/gcs.hpp"
#include "sesame/platform/mission_runner.hpp"

int main() {
  using namespace sesame;

  platform::RunnerConfig config;
  config.n_uavs = 3;
  config.area = {0.0, 200.0, 0.0, 200.0};
  config.n_persons = 5;
  config.max_time_s = 900.0;
  config.battery_fault = platform::BatteryFaultEvent{"uav3", 120.0, 0.40, 70.0};
  // Fleet robustness demo (docs/ROBUSTNESS.md): uav2 is destroyed
  // mid-mission; the recovery subsystem writes it off and re-plans its
  // coverage onto the survivors.
  sim::FailureSchedule schedule;
  sim::FailureEvent crash;
  crash.uav = "uav2";
  crash.mode = sim::FailureMode::kHardCrash;
  crash.time_s = 60.0;
  schedule.events.push_back(crash);
  config.failure_schedule = schedule;
  config.recovery_enabled = true;

  platform::MissionRunner runner(config);

  // Runtime telemetry about the platform itself: per-topic bus counters,
  // step-duration histogram, ConSert evaluation count (docs/OBSERVABILITY.md).
  obs::Observability o;
  obs::MemorySink trace;
  o.tracer.set_sink(&trace);
  runner.attach_observability(o);

  // The dashboard's data source: a GCS-side database fed over the bus,
  // with the ground control station logging operational events.
  platform::DatabaseManager db(runner.world().bus());
  db.allow_client("web_gui");
  platform::GroundControlStation gcs(runner.world().bus(), db, "web_gui");
  for (const auto& name : runner.uav_names()) {
    db.attach_uav(name);
    gcs.watch_uav(name);
  }
  gcs.log_operator_note(0.0, "mission launch authorized");

  const auto result = runner.run();

  std::printf("============================================================\n");
  std::printf(" SESAME MULTI-UAV PLATFORM — FLEET STATUS\n");
  std::printf("============================================================\n");
  std::printf(" mission: SAR sweep %.0fx%.0f m | t=%.0f s | decision: %s\n",
              config.area.width(), config.area.height(), result.total_time_s,
              conserts::mission_decision_name(result.final_decision).c_str());
  std::printf(" persons: %zu/%zu found | availability: %.1f %%\n\n",
              result.detection.persons_found, result.detection.persons_total,
              100.0 * result.availability);

  std::printf(" %-6s %-10s %-7s %-9s %-10s %-22s %s\n", "UAV", "lat", "lon",
              "alt (m)", "battery", "mode", "last action");
  for (const auto& name : runner.uav_names()) {
    const auto latest = db.latest("web_gui", name);
    if (!latest) continue;
    const auto& series = result.series.at(name);
    char battery[16];
    std::snprintf(battery, sizeof battery, "%.0f%%",
                  100.0 * latest->battery_soc);
    std::printf(" %-6s %-10.5f %-7.4f %-9.1f %-10s %-22s %s\n", name.c_str(),
                latest->reported_position.lat_deg,
                latest->reported_position.lon_deg, latest->altitude_m, battery,
                sim::flight_mode_name(latest->mode).c_str(),
                conserts::uav_action_name(series.back().action).c_str());
  }

  // Per-UAV availability (the Fig. 5 metric, per vehicle).
  std::printf("\n per-UAV availability:\n");
  for (const auto& [name, avail] : result.availability_per_uav) {
    std::printf("   %-6s %5.1f %%%s\n", name.c_str(), 100.0 * avail,
                name == "uav3" ? "   (battery fault at t=120 s)" : "");
  }

  // GCS live status view (what the web GUI renders).
  std::printf("\n%s", gcs.render_status().c_str());

  // Operational event log (last ten entries).
  std::printf("\n event log (tail):\n");
  const auto& events = gcs.events();
  const std::size_t from = events.size() > 10 ? events.size() - 10 : 0;
  for (std::size_t i = from; i < events.size(); ++i) {
    std::printf("   [t=%6.0f] %-9s %-6s %s\n", events[i].time_s,
                events[i].category.c_str(), events[i].uav.c_str(),
                events[i].message.c_str());
  }
  std::printf("\n area coverage: %.1f %% of the mission area imaged\n",
              100.0 * result.area_coverage);

  // Fleet recovery: the escalation trail for the crashed vehicle and the
  // safety-invariant verdict (docs/ROBUSTNESS.md).
  std::printf("\n fleet recovery:\n");
  std::printf("   lost vehicles: ");
  if (result.uavs_lost.empty()) {
    std::printf("none");
  } else {
    for (const auto& name : result.uavs_lost) std::printf("%s ", name.c_str());
  }
  std::printf("\n   time to detect loss : %.1f s after the crash\n",
              result.time_to_detect_loss_s);
  std::printf("   time to re-plan     : %.1f s after the crash\n",
              result.time_to_replan_s);
  std::printf("   pings %zu | demotions %zu | RTH %zu | re-plans %zu | "
              "waypoints moved %zu\n",
              result.recovery_pings, result.recovery_demotions,
              result.recovery_rth_commands, result.recovery_replans,
              result.waypoints_redistributed);
  for (const char* name : {"sesame.recovery.ping", "sesame.recovery.demote",
                           "sesame.recovery.rth_commanded",
                           "sesame.recovery.replan",
                           "sesame.recovery.uav_lost"}) {
    for (const auto& ev : trace.named(name)) {
      std::string attrs;
      for (const auto& [key, value] : ev.attributes) {
        attrs += " " + key + "=" + value;
      }
      std::printf("   event %-28s%s\n", name + 7, attrs.c_str());
    }
  }
  std::printf("   safety invariants   : %zu violation(s)\n",
              result.invariant_violations.size());

  // Observability: what a Prometheus scrape of this run would show.
  double publishes = 0.0;
  std::size_t topics = 0;
  for (const auto& s : o.metrics.snapshot().samples) {
    if (s.name == "sesame.mw.publish_total") {
      publishes += s.value;
      ++topics;
    }
  }
  const auto& step_hist =
      o.metrics.histogram("sesame.sim.step_duration_seconds");
  std::printf("\n runtime metrics (%zu series; full dump: scenario_cli"
              " --metrics):\n", o.metrics.series_count());
  std::printf("   bus traffic  : %.0f publications on %zu topics, %.0f"
              " rejected\n", publishes, topics,
              o.metrics.counter("sesame.mw.rejected_total").value());
  std::printf("   world step   : p50 %.1f us / p99 %.1f us over %zu steps\n",
              1e6 * step_hist.quantile(0.50), 1e6 * step_hist.quantile(0.99),
              step_hist.count());
  std::printf("   consert evals: %.0f periodic evaluations\n",
              o.metrics.counter("sesame.mission.consert_evals_total").value());

  // ODE interchange: the assurance models the platform would hand to a
  // certification workflow.
  conserts::ConSertNetwork network;
  for (const auto& name : runner.uav_names()) {
    conserts::add_uav_conserts(network, name);
  }
  const auto doc = eddi::consert_network_to_ode(network);
  const std::string json = doc.to_json();
  std::printf("\n ODE ConSert-network document: %zu ConSerts, %zu bytes\n",
              network.size(), json.size());
  std::printf(" first 160 bytes: %.160s...\n", json.c_str());
  return 0;
}
