// Full three-UAV SAR mission with the complete SESAME stack — the paper's
// Fig. 4 platform scenario, including a battery thermal fault on one UAV
// mid-mission (Fig. 5) so every layer is exercised: SafeDrones cumulative
// reliability, SafeML/DeepKnowledge/SINADRA uncertainty, the ConSert
// network, and the mission-level decider.
//
// Run: ./build/examples/sar_mission [--baseline]
//   --baseline disables SESAME (naive firmware only) for comparison.
#include <cstdio>
#include <cstring>

#include "sesame/platform/mission_runner.hpp"

namespace {

void print_series(const sesame::platform::RunnerResult& result,
                  const std::string& uav, double every_s) {
  std::printf("\n--- %s timeline ---\n", uav.c_str());
  std::printf("%-8s %-10s %-7s %-9s %-14s %-24s %s\n", "t (s)", "P(fail)",
              "SoC", "temp(C)", "alt (m)", "mode", "action");
  double next = 0.0;
  for (const auto& r : result.series.at(uav)) {
    if (r.time_s < next) continue;
    next = r.time_s + every_s;
    std::printf("%-8.0f %-10.4f %-7.2f %-9.1f %-14.1f %-24s %s\n", r.time_s,
                r.p_fail, r.soc, r.battery_temp_c, r.altitude_m,
                sesame::sim::flight_mode_name(r.mode).c_str(),
                sesame::conserts::uav_action_name(r.action).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sesame;

  bool sesame_on = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--baseline") == 0) sesame_on = false;
  }

  platform::RunnerConfig config;
  config.sesame_enabled = sesame_on;
  config.n_uavs = 3;
  config.area = {0.0, 300.0, 0.0, 300.0};
  config.coverage.altitude_m = 30.0;
  config.coverage.lane_spacing_m = 30.0;
  config.n_persons = 8;
  config.max_time_s = 1500.0;
  // Fig. 5 event: UAV-2's battery overheats mid-mission, SoC 80% -> 40%.
  config.battery_fault = platform::BatteryFaultEvent{"uav2", 250.0, 0.40, 70.0};
  // Scenario thresholds per the paper: keep flying until P(fail) ~ 0.9.
  config.eddi.reliability.medium_threshold = 0.30;
  config.eddi.reliability.low_threshold = 0.88;
  config.eddi.reliability.abort_threshold = 0.90;

  std::printf("=== SESAME 3-UAV SAR mission (%s) ===\n",
              sesame_on ? "SESAME enabled" : "baseline, no SESAME");
  platform::MissionRunner runner(config);
  const auto result = runner.run();

  std::printf("mission complete  : %s",
              result.mission_complete_time_s ? "yes" : "no");
  if (result.mission_complete_time_s) {
    std::printf(" at t=%.0f s", *result.mission_complete_time_s);
  }
  std::printf("\ntotal scenario    : %.0f s\n", result.total_time_s);
  std::printf("fleet availability: %.1f %%\n", 100.0 * result.availability);
  std::printf("persons found     : %zu / %zu (recall %.1f %%)\n",
              result.detection.persons_found, result.detection.persons_total,
              100.0 * result.detection.recall());
  std::printf("detection frames  : %zu, false alarms: %zu (precision %.1f %%)\n",
              result.detection.frames, result.detection.false_alarms,
              100.0 * result.detection.precision());
  std::printf("descend adaptation: %s\n", result.descended ? "fired" : "not needed");
  std::printf("final decision    : %s\n",
              conserts::mission_decision_name(result.final_decision).c_str());

  print_series(result, "uav2", 30.0);  // the faulted vehicle

  if (sesame_on) {
    std::printf("\nHint: run with --baseline to see the naive return-to-base "
                "behaviour and the availability drop (Fig. 5 comparison).\n");
  }
  return 0;
}
