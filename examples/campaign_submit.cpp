// campaign_submit: thin client for the campaign_service daemon
// (docs/SERVICE.md).
//
// Builds a submission from flags, submits it over HTTP or the framed wire
// transport, polls progress events to stderr, and writes the report bytes
// verbatim to --out (or stdout). Because the service's report surface is
// byte-identical to campaign_cli --json, `campaign_submit --preset X
// --runs N --seed S --out a.json` and `campaign_cli --preset X --runs N
// --seed S --json b.json` produce identical files.
//
// Usage:
//   campaign_submit [--port P] [--transport http|wire]
//                   [--tenant T] [--preset NAME] [--config FILE.json]
//                   [--runs N] [--seed S] [--chaos] [--no-metrics]
//                   [--out FILE]
//
// Exit codes: 0 report written; 1 transport/daemon failure; 2 bad flags;
// 3 submission rejected; 4 campaign failed on the service.
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sesame/eddi/ode.hpp"
#include "sesame/service/submission.hpp"
#include "sesame/service/wire.hpp"

namespace {

using namespace sesame;

int dial(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w <= 0) return false;
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

/// One HTTP exchange (the daemon closes after each response). Returns the
/// full response text, empty on transport failure.
std::string http_exchange(std::uint16_t port, const std::string& request) {
  const int fd = dial(port);
  if (fd < 0) return {};
  std::string response;
  if (send_all(fd, request.data(), request.size())) {
    char buf[4096];
    ssize_t n;
    while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
      response.append(buf, static_cast<std::size_t>(n));
    }
  }
  ::close(fd);
  return response;
}

/// Splits status code and body out of an HTTP/1.1 response.
bool split_response(const std::string& response, int& status,
                    std::string& body) {
  if (response.rfind("HTTP/1.1 ", 0) != 0) return false;
  status = std::atoi(response.c_str() + 9);
  const std::size_t head_end = response.find("\r\n\r\n");
  if (head_end == std::string::npos) return false;
  body = response.substr(head_end + 4);
  return true;
}

std::string http_get(std::uint16_t port, const std::string& path) {
  return http_exchange(port, "GET " + path + " HTTP/1.1\r\n"
                             "Host: localhost\r\nConnection: close\r\n\r\n");
}

int write_report(const std::string& out_path, const std::string& report) {
  if (out_path.empty()) {
    std::fwrite(report.data(), 1, report.size(), stdout);
    return 0;
  }
  std::ofstream out(out_path, std::ios::binary);
  out.write(report.data(),
            static_cast<std::streamsize>(report.size()));
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s (%zu bytes)\n", out_path.c_str(),
               report.size());
  return 0;
}

void print_events(const eddi::ode::Value& events) {
  for (const auto& event : events.as_array()) {
    std::fprintf(stderr, "event: %s\n", event.to_json().c_str());
  }
}

int run_http(std::uint16_t port, const service::Submission& submission,
             const std::string& out_path) {
  const std::string body = service::submission_to_json(submission);
  const std::string response = http_exchange(
      port, "POST /api/v1/campaigns HTTP/1.1\r\nHost: localhost\r\n"
            "Content-Type: application/json\r\nContent-Length: " +
            std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" +
            body);
  int status = 0;
  std::string resp_body;
  if (!split_response(response, status, resp_body)) {
    std::fprintf(stderr, "no response from daemon on port %u\n", port);
    return 1;
  }
  if (status != 202) {
    std::fprintf(stderr, "submission rejected (%d): %s\n", status,
                 resp_body.c_str());
    return 3;
  }
  const auto accepted = eddi::ode::parse_json(resp_body);
  const auto job = static_cast<std::uint64_t>(accepted.at("job").as_number());
  const std::string base = "/api/v1/jobs/" + std::to_string(job);
  std::fprintf(stderr, "job %llu accepted\n",
               static_cast<unsigned long long>(job));

  std::size_t cursor = 0;
  for (;;) {
    std::string events_body;
    if (split_response(
            http_get(port, base + "/events?cursor=" + std::to_string(cursor)),
            status, events_body) &&
        status == 200) {
      const auto doc = eddi::ode::parse_json(events_body);
      print_events(doc.at("events"));
      cursor = static_cast<std::size_t>(doc.at("next").as_number());
    }
    std::string status_body;
    if (!split_response(http_get(port, base), status, status_body) ||
        status != 200) {
      std::fprintf(stderr, "daemon went away\n");
      return 1;
    }
    const auto doc = eddi::ode::parse_json(status_body);
    const std::string& state = doc.at("state").as_string();
    if (state == "completed") break;
    if (state == "failed" || state == "drained") {
      std::fprintf(stderr, "job %s: %s\n", state.c_str(),
                   status_body.c_str());
      return 4;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::string report;
  if (!split_response(http_get(port, base + "/report"), status, report) ||
      status != 200) {
    std::fprintf(stderr, "report fetch failed (%d)\n", status);
    return 1;
  }
  return write_report(out_path, report);
}

int run_wire(std::uint16_t port, const service::Submission& submission,
             const std::string& out_path) {
  const int fd = dial(port);
  if (fd < 0) {
    std::fprintf(stderr, "cannot connect to wire port %u\n", port);
    return 1;
  }
  // Reads time out so the loop can keep polling while the campaign runs.
  timeval tv{};
  tv.tv_usec = 100 * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  service::WireClient client;
  client.start();
  client.submit(submission);

  std::uint64_t job = 0;
  bool accepted = false;
  auto last_poll = std::chrono::steady_clock::now() -
                   std::chrono::hours(1);
  std::size_t cursor = 0;

  for (;;) {
    if (client.has_outbound()) {
      const auto bytes = client.take_outbound();
      if (!send_all(fd, reinterpret_cast<const char*>(bytes.data()),
                    bytes.size())) {
        std::fprintf(stderr, "wire write failed\n");
        ::close(fd);
        return 1;
      }
    }
    char buf[4096];
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n == 0) {
      std::fprintf(stderr, "daemon closed the wire connection\n");
      ::close(fd);
      return 1;
    }
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
      std::fprintf(stderr, "wire read failed\n");
      ::close(fd);
      return 1;
    }
    if (n > 0) {
      client.feed(std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(buf),
          static_cast<std::size_t>(n)));
    }

    while (client.has_response()) {
      const auto doc = eddi::ode::parse_json(client.pop_response());
      const std::string& type = doc.at("type").as_string();
      if (type == "accepted") {
        job = static_cast<std::uint64_t>(doc.at("job").as_number());
        accepted = true;
        std::fprintf(stderr, "job %llu accepted\n",
                     static_cast<unsigned long long>(job));
      } else if (type == "rejected" || type == "error") {
        std::fprintf(stderr, "submission rejected: %s\n",
                     doc.to_json().c_str());
        ::close(fd);
        return 3;
      } else if (type == "events") {
        print_events(doc.at("events"));
        cursor = static_cast<std::size_t>(doc.at("next").as_number());
      } else if (type == "status") {
        const std::string& state = doc.at("state").as_string();
        if (state == "failed" || state == "drained") {
          std::fprintf(stderr, "job %s: %s\n", state.c_str(),
                       doc.to_json().c_str());
          ::close(fd);
          return 4;
        }
      }
    }

    if (client.report_received()) break;

    const auto now = std::chrono::steady_clock::now();
    if (accepted && client.established() &&
        now - last_poll > std::chrono::milliseconds(100)) {
      client.poll_events(job, cursor);
      last_poll = now;
    }
  }
  ::close(fd);
  return write_report(out_path, client.report());
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 0;
  std::string transport = "http";
  std::string out_path;
  std::string config_path;
  service::Submission submission;

  for (int i = 1; i < argc; ++i) {
    const auto need_value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--port") == 0) {
      port = static_cast<std::uint16_t>(std::atoi(need_value(argv[i])));
    } else if (std::strcmp(argv[i], "--transport") == 0) {
      transport = need_value(argv[i]);
    } else if (std::strcmp(argv[i], "--tenant") == 0) {
      submission.tenant = need_value(argv[i]);
    } else if (std::strcmp(argv[i], "--preset") == 0) {
      submission.preset = need_value(argv[i]);
    } else if (std::strcmp(argv[i], "--config") == 0) {
      config_path = need_value(argv[i]);
    } else if (std::strcmp(argv[i], "--runs") == 0) {
      submission.runs =
          static_cast<std::size_t>(std::atoll(need_value(argv[i])));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      submission.seed =
          static_cast<std::uint64_t>(std::atoll(need_value(argv[i])));
    } else if (std::strcmp(argv[i], "--chaos") == 0) {
      submission.chaos = true;
    } else if (std::strcmp(argv[i], "--no-metrics") == 0) {
      submission.collect_metrics = false;
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = need_value(argv[i]);
    } else {
      std::fprintf(stderr, "unknown flag '%s' (see the file header)\n",
                   argv[i]);
      return 2;
    }
  }
  if (port == 0) {
    std::fprintf(stderr, "--port is required (the daemon prints its ports)\n");
    return 2;
  }
  if (transport != "http" && transport != "wire") {
    std::fprintf(stderr, "--transport must be http or wire\n");
    return 2;
  }
  if (!config_path.empty()) {
    std::ifstream in(config_path);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", config_path.c_str());
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    submission.config_json = buf.str();
  }

  try {
    return transport == "http" ? run_http(port, submission, out_path)
                               : run_wire(port, submission, out_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign_submit: %s\n", e.what());
    return 1;
  }
}
