// Command-line scenario runner: configure a mission from flags, run it,
// print the summary, and optionally export the time series as CSV for
// external plotting — the batch-experimentation entry point.
//
// Usage:
//   scenario_cli [--config FILE.json] [--uavs N] [--area-m M]
//                [--altitude-m A] [--persons P] [--baseline]
//                [--battery-fault UAV:T] [--spoof UAV:T] [--seed S]
//                [--fault-plan FILE] [--link-loss]
//                [--csv PREFIX] [--save-config FILE.json]
//                [--metrics FILE|-] [--trace FILE.jsonl]
//
// --config loads a JSON scenario file first; later flags override it.
// --save-config writes the effective configuration back out.
// --fault-plan applies a message-fault schedule to the bus (drop/delay/
//   duplicate/reorder; format in docs/FAULT_INJECTION.md); --link-loss
//   turns on the distance-dependent UAV<->GCS radio model.
// --metrics dumps a Prometheus-format metrics report after the run
//   ("-" = stdout); --trace streams the structured span/event trace as
//   JSON lines. See docs/OBSERVABILITY.md for both formats.
//
// Examples:
//   scenario_cli --uavs 3 --area-m 300 --battery-fault uav2:250
//   scenario_cli --spoof uav1:60 --csv /tmp/run
//   scenario_cli --spoof uav1:60 --metrics - --trace /tmp/run.jsonl
//   scenario_cli --link-loss --fault-plan stress.plan --metrics -
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <string>

#include "sesame/campaign/scenario_factory.hpp"
#include "sesame/obs/observability.hpp"
#include "sesame/obs/sinks.hpp"
#include "sesame/platform/mission_runner.hpp"
#include "sesame/platform/config_io.hpp"
#include "sesame/platform/report.hpp"

namespace {

/// Parses "name:time" event syntax; exits with a message on bad input.
std::pair<std::string, double> parse_event(const char* arg) {
  const std::string s(arg);
  const auto colon = s.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= s.size()) {
    std::fprintf(stderr, "expected UAV:TIME, got '%s'\n", arg);
    std::exit(2);
  }
  return {s.substr(0, colon), std::atof(s.c_str() + colon + 1)};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sesame;

  platform::RunnerConfig config = campaign::ScenarioFactory::default_scenario();
  std::string csv_prefix;
  std::string save_config_path;
  std::string metrics_path;
  std::string trace_path;

  // First pass: --config must apply before overriding flags.
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--config") == 0) {
      config = platform::load_config(argv[i + 1]);
    }
  }

  for (int i = 1; i < argc; ++i) {
    const auto need_value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--uavs") == 0) {
      config.n_uavs = static_cast<std::size_t>(std::atoi(need_value("--uavs")));
    } else if (std::strcmp(argv[i], "--area-m") == 0) {
      const double side = std::atof(need_value("--area-m"));
      config.area = {0.0, side, 0.0, side};
    } else if (std::strcmp(argv[i], "--altitude-m") == 0) {
      config.coverage.altitude_m = std::atof(need_value("--altitude-m"));
    } else if (std::strcmp(argv[i], "--persons") == 0) {
      config.n_persons =
          static_cast<std::size_t>(std::atoi(need_value("--persons")));
    } else if (std::strcmp(argv[i], "--baseline") == 0) {
      config.sesame_enabled = false;
    } else if (std::strcmp(argv[i], "--battery-fault") == 0) {
      const auto [uav, t] = parse_event(need_value("--battery-fault"));
      config.battery_fault = platform::BatteryFaultEvent{uav, t, 0.40, 70.0};
    } else if (std::strcmp(argv[i], "--spoof") == 0) {
      const auto [uav, t] = parse_event(need_value("--spoof"));
      config.spoofing = platform::SpoofingEvent{uav, t, 2.0};
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      config.seed = static_cast<std::uint64_t>(std::atoll(need_value("--seed")));
    } else if (std::strcmp(argv[i], "--fault-plan") == 0) {
      try {
        config.fault_plan = mw::load_fault_plan(need_value("--fault-plan"));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "--fault-plan: %s\n", e.what());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--link-loss") == 0) {
      config.lossy_links = true;
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      csv_prefix = need_value("--csv");
    } else if (std::strcmp(argv[i], "--config") == 0) {
      need_value("--config");  // applied in the first pass
    } else if (std::strcmp(argv[i], "--save-config") == 0) {
      save_config_path = need_value("--save-config");
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics_path = need_value("--metrics");
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace_path = need_value("--trace");
    } else {
      std::fprintf(stderr, "unknown flag '%s' (see the file header)\n", argv[i]);
      return 2;
    }
  }

  if (!save_config_path.empty()) {
    platform::save_config(config, save_config_path);
    std::printf("wrote scenario config to %s\n", save_config_path.c_str());
  }

  platform::MissionRunner runner(config);

  obs::Observability o;
  std::unique_ptr<obs::JsonLinesSink> trace_sink;
  if (!trace_path.empty()) {
    trace_sink = std::make_unique<obs::JsonLinesSink>(trace_path);
    o.tracer.set_sink(trace_sink.get());
  }
  if (!metrics_path.empty() || !trace_path.empty()) {
    runner.attach_observability(o);
  }

  const auto result = runner.run();

  std::printf("sesame            : %s\n", config.sesame_enabled ? "on" : "off");
  std::printf("mission complete  : %s",
              result.mission_complete_time_s ? "yes" : "no");
  if (result.mission_complete_time_s) {
    std::printf(" at %.0f s", *result.mission_complete_time_s);
  }
  std::printf("\nscenario length   : %.0f s\n", result.total_time_s);
  std::printf("fleet availability: %.1f %%\n", 100.0 * result.availability);
  std::printf("area coverage     : %.1f %%\n", 100.0 * result.area_coverage);
  std::printf("persons found     : %zu / %zu\n", result.detection.persons_found,
              result.detection.persons_total);
  if (config.spoofing) {
    std::printf("attack detected   : %s\n",
                result.attack_detected ? "yes" : "no");
    if (result.spoofed_uav_landing_error_m >= 0.0) {
      std::printf("safe-landing error: %.1f m\n",
                  result.spoofed_uav_landing_error_m);
    }
  }
  std::printf("final decision    : %s\n",
              conserts::mission_decision_name(result.final_decision).c_str());
  if (config.fault_plan || config.lossy_links) {
    const auto& bus = runner.world().bus();
    std::printf("bus faults        : %llu dropped, %llu delayed, %llu duplicated\n",
                static_cast<unsigned long long>(bus.faults_dropped()),
                static_cast<unsigned long long>(bus.faults_delayed()),
                static_cast<unsigned long long>(bus.faults_duplicated()));
  }

  if (!csv_prefix.empty()) {
    platform::export_result(result, csv_prefix + "_series.csv",
                            csv_prefix + "_summary.csv");
    std::printf("wrote %s_series.csv and %s_summary.csv\n", csv_prefix.c_str(),
                csv_prefix.c_str());
  }

  if (!metrics_path.empty()) {
    const std::string report = o.metrics.render_prometheus();
    if (metrics_path == "-") {
      std::printf("\n# ---- metrics (Prometheus text format) ----\n%s",
                  report.c_str());
    } else {
      std::FILE* f = std::fopen(metrics_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", metrics_path.c_str());
        return 1;
      }
      std::fputs(report.c_str(), f);
      std::fclose(f);
      std::printf("wrote metrics report to %s\n", metrics_path.c_str());
    }
  }
  if (trace_sink) {
    std::printf("wrote %zu trace events to %s\n", trace_sink->events_written(),
                trace_path.c_str());
  }
  return 0;
}
